//! `questd` — the long-running QUEST compilation daemon.
//!
//! Wraps the one-shot pipeline (`quest`) in a TCP service speaking
//! newline-delimited JSON: clients submit OpenQASM circuits as jobs, watch
//! stage-by-stage progress events stream back, and receive the final
//! schema-v3 `RunReport`. The wire protocol is specified — normatively —
//! in `docs/questd-protocol.md`; the [`protocol`] module mirrors it type
//! for type, and the `protocol_doc` integration test parses every JSON
//! example in the document through these types.
//!
//! Three mechanics distinguish the daemon from "CLI in a loop":
//!
//! - **Single-flight dedup** ([`dedup`]): submissions are content-addressed
//!   by [`quest::request_fingerprint`]; N identical in-flight submissions
//!   trigger exactly one synthesis pass, and every subscriber receives a
//!   byte-identical report.
//! - **Bounded, deadline-aware queue** ([`queue`]): explicit backpressure
//!   (`queue_full`) instead of unbounded latency, priority scheduling, and
//!   eviction of jobs whose queue deadline passed before a worker was free.
//! - **Per-request degradation budgets** ([`protocol::JobConfig`]): each
//!   job maps its own `block_deadline_ms` / `max_gradient_evals` /
//!   `anneal_deadline_ms` / `strict` knobs onto the pipeline's graceful-
//!   degradation machinery, and each report carries its own degradation
//!   tally.
//! - **Hostile-network hardening** ([`net`], [`server`]): a std-only
//!   readiness event loop (nonblocking sockets, one poll thread) with
//!   per-connection read/write deadlines, a request-line cap, bounded
//!   outbound buffers, token-bucket accept/submission rate limits
//!   (`rate_limited`), graceful drain (`shutdown` op → `shutting_down`
//!   rejections, queued jobs still finish), and a Prometheus text
//!   exposition of every `questd.*` counter (`metrics` op).
//!
//! Start a daemon in-process with [`Server::bind`] (the `questd` binary and
//! `quest-cli serve` are thin wrappers), talk to it with [`Client`].

#![deny(missing_docs)]

pub mod client;
pub mod dedup;
pub mod job;
pub mod net;
pub mod protocol;
pub mod queue;
pub mod server;

pub use client::{Client, JobOutcome, RetryPolicy, RetryingClient};
pub use net::{NetConfig, RateLimit};
pub use protocol::{
    ErrorCode, Event, JobConfig, Progress, ProtocolError, Request, StatsSnapshot, SubmitRequest,
    PROTOCOL_VERSION,
};
pub use server::{DrainReport, Server, ServerConfig};
