//! OpenQASM in, OpenQASM out: parse a circuit from QASM (the paper's input
//! format), approximate it with QUEST, and emit each selected approximation
//! back as QASM — the artifact's `input_qasm_files → dual_annealing_solutions`
//! flow in one program.
//!
//! ```sh
//! cargo run --release --example qasm_pipeline
//! ```

use qcircuit::qasm;
use quest::{Quest, QuestConfig};

const INPUT: &str = r#"
OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
creg c[3];
h q[0];
cx q[0],q[1];
rz(pi/8) q[1];
cx q[0],q[1];
cx q[1],q[2];
rz(pi/8) q[2];
cx q[1],q[2];
cx q[0],q[1];
rz(pi/8) q[1];
cx q[0],q[1];
rx(pi/4) q[0];
rx(pi/4) q[1];
rx(pi/4) q[2];
measure q -> c;
"#;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let circuit = qasm::parse(INPUT)?;
    println!(
        "parsed: {} qubits, {} gates, {} CNOTs",
        circuit.num_qubits(),
        circuit.len(),
        circuit.cnot_count()
    );

    let result = Quest::new(QuestConfig::fast().with_seed(3)).compile(&circuit);
    println!("selected {} approximations\n", result.samples.len());

    for (i, sample) in result.samples.iter().enumerate() {
        println!(
            "// --- approximation {i}: {} CNOTs, bound {:.3} ---",
            sample.cnot_count, sample.bound
        );
        print!("{}", qasm::emit(&sample.circuit));
        println!();
    }

    // Round-trip sanity: the emitted QASM parses back to the same circuit.
    for sample in &result.samples {
        let back = qasm::parse(&qasm::emit(&sample.circuit))?;
        assert_eq!(back, sample.circuit);
    }
    println!("// all emitted programs round-trip through the parser");
    Ok(())
}
