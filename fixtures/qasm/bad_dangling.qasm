OPENQASM 2.0;
include "qelib1.inc";
// Seeded bug: a 4-qubit register, but qubits 2 and 3 are never touched.
qreg q[4];
h q[0];
cx q[0],q[1];
rz(0.5) q[1];
