// Fixture: unsafe-without-safety. FIRE: undocumented unsafe block and fn.
pub fn read_first(xs: &[u8]) -> u8 {
    unsafe { *xs.as_ptr() }
}

pub unsafe fn unchecked_add(a: *const u8, n: usize) -> *const u8 {
    a.add(n)
}

// CLEAN: the audit comment / doc section satisfies the lint.
pub fn read_first_documented(xs: &[u8]) -> u8 {
    assert!(!xs.is_empty());
    // SAFETY: the assert above guarantees at least one element.
    unsafe { *xs.as_ptr() }
}

/// Offsets a pointer.
///
/// # Safety
///
/// `a + n` must stay within the same allocated object.
pub unsafe fn unchecked_add_documented(a: *const u8, n: usize) -> *const u8 {
    a.add(n)
}
