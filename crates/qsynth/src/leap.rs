//! The layer-by-layer synthesis search (paper Fig. 5) with QUEST's
//! collect-all-approximations modification.

use crate::cost::HsCost;
use crate::optimize::{minimize_batched, OptimizerConfig};
use crate::template::Template;
use qcircuit::Circuit;
use qmath::Matrix;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::OnceLock;
use std::time::{Duration, Instant};

/// Configuration of the synthesis search.
#[derive(Clone, Debug, PartialEq)]
pub struct SynthesisConfig {
    /// Success threshold on the HS process distance.
    pub epsilon: f64,
    /// Stop expanding once a layer would exceed this many CNOTs (the paper
    /// stops at the original circuit's CNOT count). `None` ⇒ width² + 8.
    pub max_cnots: Option<usize>,
    /// Branches kept per tree depth (beam search width).
    pub beam_width: usize,
    /// LEAP re-seeding: every this-many layers the tree collapses to its
    /// best branch.
    pub reseed_interval: usize,
    /// Per-node angle-optimization settings.
    pub optimizer: OptimizerConfig,
    /// When `true` (QUEST mode, Sec. 3.5) every optimized tree node is
    /// recorded as a candidate; when `false` the search just hunts for one
    /// exact solution.
    pub collect_all: bool,
    /// Optional device topology: CNOT layers are only placed on coupled
    /// qubit pairs, so synthesized circuits need no routing (LEAP is
    /// topology-aware). `None` means all-to-all.
    pub coupling: Option<qcircuit::topology::CouplingMap>,
    /// Total worker-thread budget for this synthesis run. The frontier's
    /// candidate placements expand concurrently up to this width, one
    /// thread per job; within each job the optimizer packs its restarts
    /// into the SIMD lanes of one batched evaluator
    /// ([`OptimizerConfig::batch_width`]) instead of spawning threads.
    /// `None` uses [`std::thread::available_parallelism`]; `Some(1)` is
    /// fully serial. The result is **bit-identical** for every width (each
    /// candidate's RNG seed depends only on its tree position, and the
    /// expanded children are reduced in deterministic placement order).
    pub parallel_width: Option<usize>,
    /// Wall-clock budget for the whole search. When it expires the run
    /// stops at the next layer boundary (in-flight jobs of the current
    /// layer are skipped) and [`SynthesisResult::deadline_expired`] is set;
    /// candidates recorded so far are kept. `None` ⇒ unbounded. Timed-out
    /// results depend on wall-clock, so callers must not treat them as
    /// deterministic (quest degrades such blocks to their exact entry).
    pub deadline: Option<Duration>,
    /// Gradient-evaluation budget for the whole search, checked at layer
    /// boundaries — enforcement is deterministic: the same layers run for
    /// a given config regardless of thread count. Exceeding it sets
    /// [`SynthesisResult::eval_budget_exhausted`]. `None` ⇒ unbounded.
    pub max_gradient_evals: Option<usize>,
}

impl SynthesisConfig {
    /// Exact-synthesis preset: tight threshold, no candidate collection.
    pub fn exact(epsilon: f64) -> Self {
        SynthesisConfig {
            epsilon,
            max_cnots: None,
            beam_width: 2,
            reseed_interval: 3,
            optimizer: OptimizerConfig {
                max_iters: 600,
                restarts: 2,
                target_cost: (epsilon * epsilon).max(1e-14),
                ..OptimizerConfig::default()
            },
            collect_all: false,
            coupling: None,
            parallel_width: None,
            deadline: None,
            max_gradient_evals: None,
        }
    }

    /// QUEST approximate-synthesis preset: looser threshold, collect every
    /// intermediate solution up to `max_cnots`.
    pub fn approximate(epsilon: f64, max_cnots: usize) -> Self {
        SynthesisConfig {
            epsilon,
            max_cnots: Some(max_cnots),
            beam_width: 2,
            reseed_interval: 3,
            optimizer: OptimizerConfig {
                max_iters: 500,
                restarts: 3,
                target_cost: 1e-14,
                ..OptimizerConfig::default()
            },
            collect_all: true,
            coupling: None,
            parallel_width: None,
            deadline: None,
            max_gradient_evals: None,
        }
    }

    /// Returns a copy with the base RNG seed replaced.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.optimizer.seed = seed;
        self
    }
}

impl Default for SynthesisConfig {
    fn default() -> Self {
        SynthesisConfig::exact(1e-5)
    }
}

/// One synthesized circuit with its quality metrics.
#[derive(Clone, Debug)]
pub struct Candidate {
    /// The instantiated circuit.
    pub circuit: Circuit,
    /// HS process distance to the target unitary.
    pub distance: f64,
    /// CNOT count of the circuit.
    pub cnot_count: usize,
}

/// All circuits produced by one synthesis run.
#[derive(Clone, Debug, Default)]
pub struct SynthesisResult {
    /// Every recorded candidate, in exploration order.
    pub candidates: Vec<Candidate>,
    /// Tree depth reached.
    pub layers_explored: usize,
    /// Total gradient evaluations spent (cost proxy for Fig. 12).
    pub gradient_evals: usize,
    /// Optimizer start attempts aborted on a non-finite cost/gradient or a
    /// panic and redrawn from a salted seed. Nonzero means the run took a
    /// recovery path a clean run never samples, so its output is valid but
    /// not bit-reproducible against an unpoisoned run.
    pub poisoned_starts: usize,
    /// The wall-clock [`SynthesisConfig::deadline`] expired before the
    /// search converged; the candidate set is a best-so-far prefix.
    pub deadline_expired: bool,
    /// The [`SynthesisConfig::max_gradient_evals`] budget ran out before
    /// the search converged; the candidate set is a best-so-far prefix.
    pub eval_budget_exhausted: bool,
}

impl SynthesisResult {
    /// True when the search was cut short or had to recover from poisoned
    /// starts — the candidates are valid but incomplete or off the
    /// deterministic clean path.
    pub fn degraded(&self) -> bool {
        self.deadline_expired || self.eval_budget_exhausted || self.poisoned_starts > 0
    }

    /// The candidate with the smallest distance (ties → fewer CNOTs).
    /// NaN distances order after every finite value (`total_cmp`), so a
    /// poisoned candidate can never be selected over a finite one.
    pub fn best(&self) -> Option<&Candidate> {
        self.candidates.iter().min_by(|a, b| {
            a.distance
                .total_cmp(&b.distance)
                .then(a.cnot_count.cmp(&b.cnot_count))
        })
    }

    /// The fewest-CNOT candidate within `epsilon`, if any.
    pub fn best_within(&self, epsilon: f64) -> Option<&Candidate> {
        self.candidates
            .iter()
            .filter(|c| c.distance <= epsilon)
            .min_by(|a, b| {
                a.cnot_count
                    .cmp(&b.cnot_count)
                    .then(a.distance.total_cmp(&b.distance))
            })
    }

    /// The Pareto frontier over (CNOT count, distance): for every CNOT count
    /// explored, the lowest-distance candidate, filtered so distance is
    /// strictly decreasing with CNOT count.
    pub fn pareto(&self) -> Vec<&Candidate> {
        let mut by_cnots: Vec<&Candidate> = Vec::new();
        let mut sorted: Vec<&Candidate> = self.candidates.iter().collect();
        sorted.sort_by(|a, b| {
            a.cnot_count
                .cmp(&b.cnot_count)
                .then(a.distance.total_cmp(&b.distance))
        });
        let mut best_so_far = f64::INFINITY;
        for c in sorted {
            if by_cnots
                .last()
                .is_some_and(|prev| prev.cnot_count == c.cnot_count)
            {
                continue; // keep only the best per CNOT count
            }
            if c.distance < best_so_far {
                best_so_far = c.distance;
                by_cnots.push(c);
            }
        }
        by_cnots
    }
}

struct Node {
    template: Template,
    params: Vec<f64>,
    cost: f64,
}

/// Synthesizes circuits for `target` (a `2^n × 2^n` unitary, `n ≤ 4`
/// recommended) according to `cfg`.
///
/// Deterministic for a fixed config (all randomness is seeded from
/// `cfg.optimizer.seed`).
///
/// # Panics
///
/// Panics if `target` is not square with a power-of-two dimension ≥ 2.
pub fn synthesize(target: &Matrix, cfg: &SynthesisConfig) -> SynthesisResult {
    assert!(target.is_square(), "target must be square");
    let dim = target.rows();
    assert!(
        dim >= 2 && dim.is_power_of_two(),
        "target dimension must be a power of two ≥ 2"
    );
    let n = dim.trailing_zeros() as usize;
    let max_cnots = cfg.max_cnots.unwrap_or(n * n + 8);
    let exact_floor = (cfg.epsilon * 1e-2).min(1e-7);
    // The total worker budget for this run, consumed by concurrent frontier
    // expansions. Per-candidate optimizer starts are not threaded — they
    // ride the SIMD lanes of a batched evaluator — so the budget only
    // trades wall-clock for threads at the frontier level; the result is
    // bit-identical for every width.
    let budget = cfg.parallel_width.map_or_else(
        || std::thread::available_parallelism().map_or(1, std::num::NonZero::get),
        |w| w.max(1),
    );
    let _span = qobs::span!(
        "qsynth.synthesize",
        qubits = n,
        max_cnots = max_cnots,
        epsilon = cfg.epsilon,
        collect_all = cfg.collect_all,
        parallel_width = budget,
    );

    let started = Instant::now();
    let mut result = SynthesisResult::default();
    let record = |node: &Node, result: &mut SynthesisResult| {
        // A fully-poisoned node carries an infinite cost; recording it
        // would put a useless entry (and a NaN-free but infinite distance)
        // into the menu, so it is dropped here.
        if !node.cost.is_finite() {
            return;
        }
        result.candidates.push(Candidate {
            circuit: node.template.instantiate(&node.params),
            distance: HsCost::distance(node.cost),
            cnot_count: node.template.cnot_count(),
        });
    };

    // Depth 0: free U3 on every qubit.
    let root_template = Template::initial(n);
    let root = {
        let cost_fn = HsCost::new(&root_template, target);
        let out = minimize_batched(
            |w| cost_fn.batch_evaluator(w),
            cost_fn.num_params(),
            None,
            &seeded(&cfg.optimizer, 0),
        );
        result.gradient_evals += out.evals;
        result.poisoned_starts += out.poisoned_starts;
        Node {
            template: root_template,
            params: out.params,
            cost: out.cost,
        }
    };
    record(&root, &mut result);
    let mut done = HsCost::distance(root.cost)
        <= if cfg.collect_all {
            exact_floor
        } else {
            cfg.epsilon
        };
    let mut frontier = vec![root];

    // Unordered qubit pairs; CNOT direction is absorbable by the adjacent
    // free U3s, so one direction per pair halves the branching factor. A
    // coupling map restricts layers to device-native pairs.
    let pairs: Vec<(usize, usize)> = (0..n)
        .flat_map(|a| ((a + 1)..n).map(move |b| (a, b)))
        .filter(|&(a, b)| cfg.coupling.as_ref().is_none_or(|map| map.connected(a, b)))
        .collect();
    if let Some(map) = &cfg.coupling {
        assert_eq!(
            map.num_qubits(),
            n,
            "coupling map width must match the target"
        );
        assert!(
            !pairs.is_empty() || n == 1,
            "coupling map leaves no usable qubit pairs"
        );
    }

    let mut layer = 0usize;
    let hard_expired = AtomicBool::new(false);
    while !done {
        qfault::inject!("qsynth.layer", delay);
        // Budget checks happen at layer boundaries. The eval budget is
        // deterministic (gradient_evals at a boundary does not depend on
        // thread count); the deadline is wall-clock and therefore is not.
        if cfg
            .max_gradient_evals
            .is_some_and(|cap| result.gradient_evals >= cap)
        {
            result.eval_budget_exhausted = true;
            break;
        }
        if cfg.deadline.is_some_and(|dl| started.elapsed() >= dl) {
            result.deadline_expired = true;
            break;
        }
        layer += 1;
        if layer > max_cnots {
            break;
        }
        // One job per candidate placement of this layer's CNOT. Each job's
        // RNG seed depends only on its (layer, node, pair) position, so the
        // jobs are order-independent and can run on any number of workers.
        let jobs = frontier.len() * pairs.len();
        let frontier_width = budget.min(jobs).max(1);
        let expand = |ni: usize, pi: usize| -> Option<(Node, usize, usize)> {
            // A deadline that expires mid-layer skips the remaining jobs:
            // which jobs got skipped is wall-clock dependent, but any
            // deadline-truncated result is flagged and treated as degraded
            // downstream, so the nondeterminism never reaches a clean run.
            if cfg.deadline.is_some_and(|dl| started.elapsed() >= dl) {
                hard_expired.store(true, Ordering::Relaxed);
                return None;
            }
            let node = &frontier[ni];
            let (c, t) = pairs[pi];
            let template = node.template.with_layer(c, t);
            let cost_fn = HsCost::new(&template, target);
            let seed_mix = (layer as u64) << 32 | (ni as u64) << 16 | pi as u64;
            // Adaptive effort: try the warm start alone first; extra
            // random restarts are only paid for when the warm basin
            // fails to reach the threshold.
            let warm_cfg = OptimizerConfig {
                restarts: 1,
                ..seeded(&cfg.optimizer, seed_mix)
            };
            let mut out = minimize_batched(
                |w| cost_fn.batch_evaluator(w),
                cost_fn.num_params(),
                Some(&node.params),
                &warm_cfg,
            );
            if HsCost::distance(out.cost) > cfg.epsilon && cfg.optimizer.restarts > 1 {
                let cold_cfg = OptimizerConfig {
                    restarts: cfg.optimizer.restarts - 1,
                    ..seeded(&cfg.optimizer, seed_mix ^ 0xC01D)
                };
                let mut cold = minimize_batched(
                    |w| cost_fn.batch_evaluator(w),
                    cost_fn.num_params(),
                    None,
                    &cold_cfg,
                );
                cold.evals += out.evals;
                if cold.cost < out.cost {
                    out = cold;
                } else {
                    out.evals = cold.evals;
                }
            }
            let evals = out.evals;
            Some((
                Node {
                    template,
                    params: out.params,
                    cost: out.cost,
                },
                evals,
                out.poisoned_starts,
            ))
        };

        type Job = Option<(Node, usize, usize)>;
        let expanded: Vec<Job> = if frontier_width > 1 {
            // Deterministic parallel expansion: workers pull job indices
            // from an atomic queue and publish into per-job cells; the
            // collection below walks the cells in placement order, so the
            // recorded candidates, eval counts, and children are identical
            // to the serial sweep.
            let cells: Vec<OnceLock<Job>> = (0..jobs).map(|_| OnceLock::new()).collect();
            let next = AtomicUsize::new(0);
            // A worker panic must degrade, not tear down synthesis: the
            // survivors drain the queue, and any job whose cell was never
            // set is treated as a skipped expansion (counted as a poisoned
            // start so the run is reported degraded).
            let scope_result = crossbeam::thread::scope(|scope| {
                for _ in 0..frontier_width {
                    scope.spawn(|_| loop {
                        let j = next.fetch_add(1, Ordering::Relaxed);
                        if j >= jobs {
                            break;
                        }
                        let _ = cells[j].set(expand(j / pairs.len(), j % pairs.len()));
                    });
                }
            });
            if scope_result.is_err() {
                qobs::metrics::counter("qsynth.worker_panics", 1);
            }
            cells
                .into_iter()
                .map(|cell| {
                    let slot = cell.into_inner();
                    if slot.is_none() {
                        result.poisoned_starts += 1;
                    }
                    slot.flatten()
                })
                .collect()
        } else {
            (0..jobs)
                .map(|j| expand(j / pairs.len(), j % pairs.len()))
                .collect()
        };

        let mut children: Vec<Node> = Vec::with_capacity(jobs);
        for job in expanded {
            let Some((child, evals, poisoned)) = job else {
                continue; // skipped by the mid-layer deadline check
            };
            result.gradient_evals += evals;
            result.poisoned_starts += poisoned;
            if cfg.collect_all {
                record(&child, &mut result);
            }
            children.push(child);
        }
        if hard_expired.load(Ordering::Relaxed) {
            result.deadline_expired = true;
        }
        children.sort_by(|a, b| a.cost.total_cmp(&b.cost));
        if let Some(best) = children.first() {
            // Per-layer telemetry: how deep the LEAP tree is and how fast
            // the best branch's HS distance falls with each CNOT layer.
            let layer_best = HsCost::distance(best.cost);
            qobs::event!(
                "qsynth.layer",
                layer = layer,
                nodes = children.len(),
                best_distance = layer_best,
            );
            qobs::metrics::histogram("qsynth.layer_best_distance", layer_best);
        }
        if !cfg.collect_all {
            if let Some(best) = children.first() {
                if HsCost::distance(best.cost) <= cfg.epsilon {
                    record(best, &mut result);
                    done = true;
                }
            }
        } else if let Some(best) = children.first() {
            // In collect-all mode, deeper layers only add CNOTs once the
            // solution is numerically exact.
            if HsCost::distance(best.cost) <= exact_floor {
                done = true;
            }
        }
        children.truncate(cfg.beam_width.max(1));
        // LEAP prefix re-seeding: collapse to the best branch periodically.
        if cfg.reseed_interval > 0 && layer.is_multiple_of(cfg.reseed_interval) {
            children.truncate(1);
        }
        if children.is_empty() {
            break;
        }
        frontier = children;
    }
    result.layers_explored = layer;
    if result.deadline_expired || result.eval_budget_exhausted {
        qobs::event!(
            "qsynth.budget_cutoff",
            layer = layer,
            gradient_evals = result.gradient_evals,
            deadline_expired = result.deadline_expired,
            eval_budget_exhausted = result.eval_budget_exhausted,
        );
    }
    qobs::metrics::counter("qsynth.runs", 1);
    qobs::metrics::counter("qsynth.gradient_evals", result.gradient_evals as u64);
    qobs::metrics::counter("qsynth.poisoned_starts", result.poisoned_starts as u64);
    qobs::metrics::counter("qsynth.candidates", result.candidates.len() as u64);
    #[allow(clippy::cast_precision_loss)]
    qobs::metrics::histogram("qsynth.layers_explored", result.layers_explored as f64);
    result
}

fn seeded(base: &OptimizerConfig, mix: u64) -> OptimizerConfig {
    OptimizerConfig {
        seed: base
            .seed
            .wrapping_mul(0x9E37_79B9_7F4A_7C15)
            .wrapping_add(mix),
        ..*base
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::Gate;

    #[test]
    fn synthesizes_single_qubit_unitary_with_zero_cnots() {
        let target = qcircuit::embed::embed(&Gate::H.matrix(), &[0], 2);
        let result = synthesize(&target, &SynthesisConfig::exact(1e-6));
        let best = result.best().unwrap();
        assert!(best.distance < 1e-6, "distance {}", best.distance);
        assert_eq!(best.cnot_count, 0);
    }

    #[test]
    fn synthesizes_cnot_equivalent() {
        let mut c = Circuit::new(2);
        c.cnot(0, 1);
        let result = synthesize(&c.unitary(), &SynthesisConfig::exact(1e-5));
        let best = result.best().unwrap();
        assert!(best.distance < 1e-5, "distance {}", best.distance);
        assert!(best.cnot_count <= 1, "cnots {}", best.cnot_count);
    }

    #[test]
    fn approximate_mode_collects_multiple_cnot_counts() {
        let mut c = Circuit::new(2);
        c.h(0)
            .cnot(0, 1)
            .rz(1, 0.9)
            .cnot(0, 1)
            .ry(0, 0.4)
            .cnot(0, 1);
        let cfg = SynthesisConfig::approximate(0.3, 3);
        let result = synthesize(&c.unitary(), &cfg);
        assert!(result.candidates.len() >= 3);
        let counts: std::collections::BTreeSet<usize> =
            result.candidates.iter().map(|c| c.cnot_count).collect();
        assert!(
            counts.len() >= 2,
            "expected multiple CNOT counts: {counts:?}"
        );
    }

    #[test]
    fn pareto_frontier_is_monotone() {
        let mut c = Circuit::new(2);
        c.h(0)
            .cnot(0, 1)
            .rz(1, 0.9)
            .cnot(0, 1)
            .rx(0, 1.0)
            .cnot(0, 1);
        let cfg = SynthesisConfig::approximate(0.5, 3);
        let result = synthesize(&c.unitary(), &cfg);
        let frontier = result.pareto();
        for w in frontier.windows(2) {
            assert!(w[0].cnot_count < w[1].cnot_count);
            assert!(w[0].distance > w[1].distance);
        }
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1).rz(1, 0.5);
        let cfg = SynthesisConfig::exact(1e-4).with_seed(7);
        let r1 = synthesize(&c.unitary(), &cfg);
        let r2 = synthesize(&c.unitary(), &cfg);
        assert_eq!(r1.candidates.len(), r2.candidates.len());
        assert_eq!(r1.best().unwrap().circuit, r2.best().unwrap().circuit);
    }

    #[test]
    fn eval_budget_cuts_search_short_but_keeps_candidates() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1).rz(1, 0.9).cnot(0, 1).ry(0, 0.4);
        let mut cfg = SynthesisConfig::approximate(1e-8, 4);
        cfg.max_gradient_evals = Some(1); // exhausted right after the root
        let result = synthesize(&c.unitary(), &cfg);
        assert!(result.eval_budget_exhausted);
        assert!(result.degraded());
        assert!(!result.candidates.is_empty(), "root candidate kept");
    }

    #[test]
    fn zero_deadline_expires_but_keeps_root() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1).rz(1, 0.9);
        let mut cfg = SynthesisConfig::approximate(1e-8, 4);
        cfg.deadline = Some(Duration::ZERO);
        let result = synthesize(&c.unitary(), &cfg);
        assert!(result.deadline_expired);
        assert!(!result.candidates.is_empty(), "root candidate kept");
    }

    #[test]
    fn best_ignores_nan_distance_candidates() {
        let mk = |distance: f64, cnot_count: usize| Candidate {
            circuit: Circuit::new(1),
            distance,
            cnot_count,
        };
        let result = SynthesisResult {
            candidates: vec![mk(f64::NAN, 0), mk(0.25, 1), mk(f64::NAN, 2)],
            ..SynthesisResult::default()
        };
        assert_eq!(result.best().unwrap().cnot_count, 1);
        assert_eq!(result.best_within(0.5).unwrap().cnot_count, 1);
        assert_eq!(result.pareto().len(), 1);
    }

    #[test]
    fn best_within_prefers_fewer_cnots() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1).rz(1, 0.9).cnot(0, 1);
        let cfg = SynthesisConfig::approximate(0.9, 3);
        let result = synthesize(&c.unitary(), &cfg);
        let loose = result.best_within(0.9).unwrap();
        let tight = result.best_within(1e-3);
        if let Some(tight) = tight {
            assert!(loose.cnot_count <= tight.cnot_count);
        }
    }
}
