//! The circuit data structure.

use crate::{CircuitError, Gate};
use qmath::Matrix;
use std::fmt;

/// A gate applied to specific qubits.
#[derive(Clone, Debug, PartialEq)]
pub struct Instruction {
    /// The gate.
    pub gate: Gate,
    /// Operand qubits; `[control, target]` for controlled gates.
    pub qubits: Vec<usize>,
}

impl Instruction {
    /// Creates an instruction, without validating against a circuit width.
    pub fn new(gate: Gate, qubits: Vec<usize>) -> Self {
        Instruction { gate, qubits }
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let qs = self
            .qubits
            .iter()
            .map(|q| format!("q[{q}]"))
            .collect::<Vec<_>>()
            .join(",");
        write!(f, "{} {qs}", self.gate)
    }
}

/// An ordered list of gates on a fixed-width qubit register.
///
/// Builder methods (`h`, `cnot`, `rz`, …) panic on invalid operands — they
/// are meant for programmatic circuit construction where indices are known
/// correct. The fallible [`Circuit::try_push`] is available for parsing and
/// other untrusted inputs.
///
/// ```
/// use qcircuit::Circuit;
///
/// let mut ghz = Circuit::new(3);
/// ghz.h(0).cnot(0, 1).cnot(1, 2);
/// assert_eq!(ghz.len(), 3);
/// assert_eq!(ghz.cnot_count(), 2);
/// assert_eq!(ghz.depth(), 3);
/// ```
#[derive(Clone, Debug, PartialEq, Default)]
pub struct Circuit {
    num_qubits: usize,
    instructions: Vec<Instruction>,
}

impl Circuit {
    /// Creates an empty circuit on `num_qubits` qubits.
    pub fn new(num_qubits: usize) -> Self {
        Circuit {
            num_qubits,
            instructions: Vec::new(),
        }
    }

    /// Circuit width (number of qubits).
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Number of instructions.
    #[inline]
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Returns `true` when the circuit has no instructions.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Borrow of the instruction list.
    #[inline]
    pub fn instructions(&self) -> &[Instruction] {
        &self.instructions
    }

    /// Iterates over the instructions in program order.
    pub fn iter(&self) -> std::slice::Iter<'_, Instruction> {
        self.instructions.iter()
    }

    /// Validates and appends a gate.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError`] when operand count, range, or distinctness is
    /// violated.
    pub fn try_push(&mut self, gate: Gate, qubits: &[usize]) -> Result<(), CircuitError> {
        if qubits.len() != gate.num_qubits() {
            return Err(CircuitError::ArityMismatch {
                gate: gate.name(),
                expected: gate.num_qubits(),
                actual: qubits.len(),
            });
        }
        for (i, &q) in qubits.iter().enumerate() {
            if q >= self.num_qubits {
                return Err(CircuitError::QubitOutOfRange {
                    qubit: q,
                    num_qubits: self.num_qubits,
                });
            }
            if qubits[..i].contains(&q) {
                return Err(CircuitError::DuplicateQubit { qubit: q });
            }
        }
        self.instructions
            .push(Instruction::new(gate, qubits.to_vec()));
        Ok(())
    }

    /// Appends a gate.
    ///
    /// # Panics
    ///
    /// Panics on invalid operands; see [`Circuit::try_push`].
    pub fn push(&mut self, gate: Gate, qubits: &[usize]) -> &mut Self {
        self.try_push(gate, qubits).expect("invalid instruction");
        self
    }

    // --- builder sugar -------------------------------------------------

    /// Appends a Hadamard on `q`.
    pub fn h(&mut self, q: usize) -> &mut Self {
        self.push(Gate::H, &[q])
    }

    /// Appends a Pauli-X on `q`.
    pub fn x(&mut self, q: usize) -> &mut Self {
        self.push(Gate::X, &[q])
    }

    /// Appends a Pauli-Y on `q`.
    pub fn y(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Y, &[q])
    }

    /// Appends a Pauli-Z on `q`.
    pub fn z(&mut self, q: usize) -> &mut Self {
        self.push(Gate::Z, &[q])
    }

    /// Appends an S gate on `q`.
    pub fn s(&mut self, q: usize) -> &mut Self {
        self.push(Gate::S, &[q])
    }

    /// Appends a T gate on `q`.
    pub fn t(&mut self, q: usize) -> &mut Self {
        self.push(Gate::T, &[q])
    }

    /// Appends `Rx(theta)` on `q`.
    pub fn rx(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Rx(theta), &[q])
    }

    /// Appends `Ry(theta)` on `q`.
    pub fn ry(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Ry(theta), &[q])
    }

    /// Appends `Rz(theta)` on `q`.
    pub fn rz(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Rz(theta), &[q])
    }

    /// Appends a phase gate on `q`.
    pub fn p(&mut self, q: usize, theta: f64) -> &mut Self {
        self.push(Gate::Phase(theta), &[q])
    }

    /// Appends `U3(theta, phi, lambda)` on `q`.
    pub fn u3(&mut self, q: usize, theta: f64, phi: f64, lambda: f64) -> &mut Self {
        self.push(Gate::U3(theta, phi, lambda), &[q])
    }

    /// Appends a CNOT with the given control and target.
    pub fn cnot(&mut self, control: usize, target: usize) -> &mut Self {
        self.push(Gate::Cnot, &[control, target])
    }

    /// Appends a CZ with the given control and target.
    pub fn cz(&mut self, control: usize, target: usize) -> &mut Self {
        self.push(Gate::Cz, &[control, target])
    }

    /// Appends a SWAP of `a` and `b`.
    pub fn swap(&mut self, a: usize, b: usize) -> &mut Self {
        self.push(Gate::Swap, &[a, b])
    }

    // --- statistics -----------------------------------------------------

    /// Number of CNOT gates — the quantity QUEST minimizes. SWAPs count as 3
    /// CNOTs and CZs as 1 (their standard CNOT implementations), mirroring
    /// how the paper counts hardware-level CNOT applications.
    pub fn cnot_count(&self) -> usize {
        self.instructions
            .iter()
            .map(|i| match i.gate {
                Gate::Cnot | Gate::Cz => 1,
                Gate::Swap => 3,
                _ => 0,
            })
            .sum()
    }

    /// Number of two-qubit instructions of any kind.
    pub fn two_qubit_count(&self) -> usize {
        self.instructions
            .iter()
            .filter(|i| i.gate.is_two_qubit())
            .count()
    }

    /// Number of one-qubit instructions.
    pub fn one_qubit_count(&self) -> usize {
        self.len() - self.two_qubit_count()
    }

    /// Histogram of gate names, sorted alphabetically — circuit-structure
    /// summaries for reports and the Fig. 15 shrinkage illustration.
    pub fn gate_counts(&self) -> Vec<(&'static str, usize)> {
        let mut counts: std::collections::BTreeMap<&'static str, usize> =
            std::collections::BTreeMap::new();
        for inst in &self.instructions {
            *counts.entry(inst.gate.name()).or_insert(0) += 1;
        }
        counts.into_iter().collect()
    }

    /// Circuit depth: the longest dependency chain through shared qubits.
    pub fn depth(&self) -> usize {
        let mut level = vec![0usize; self.num_qubits];
        for inst in &self.instructions {
            let d = inst.qubits.iter().map(|&q| level[q]).max().unwrap_or(0) + 1;
            for &q in &inst.qubits {
                level[q] = d;
            }
        }
        level.into_iter().max().unwrap_or(0)
    }

    /// The set of qubits actually touched by at least one instruction,
    /// sorted ascending.
    pub fn active_qubits(&self) -> Vec<usize> {
        let mut used = vec![false; self.num_qubits];
        for inst in &self.instructions {
            for &q in &inst.qubits {
                used[q] = true;
            }
        }
        used.iter()
            .enumerate()
            .filter_map(|(q, &u)| u.then_some(q))
            .collect()
    }

    // --- transformations --------------------------------------------------

    /// Appends all instructions of `other` (same width) to `self`.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::WidthMismatch`] when the widths differ.
    pub fn try_extend_from(&mut self, other: &Circuit) -> Result<&mut Self, CircuitError> {
        if self.num_qubits != other.num_qubits {
            return Err(CircuitError::WidthMismatch {
                left: self.num_qubits,
                right: other.num_qubits,
            });
        }
        self.instructions.extend(other.instructions.iter().cloned());
        Ok(self)
    }

    /// Appends all instructions of `other` (same width) to `self`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ; see [`Circuit::try_extend_from`].
    pub fn extend_from(&mut self, other: &Circuit) -> &mut Self {
        self.try_extend_from(other)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// The inverse circuit: gates inverted, order reversed.
    pub fn inverse(&self) -> Circuit {
        let mut inv = Circuit::new(self.num_qubits);
        for inst in self.instructions.iter().rev() {
            inv.instructions
                .push(Instruction::new(inst.gate.inverse(), inst.qubits.clone()));
        }
        inv
    }

    /// Returns this circuit re-targeted onto a larger register: local qubit
    /// `i` maps to `mapping[i]`.
    ///
    /// Used to place a synthesized block back into the full circuit.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::MappingLength`] when
    /// `mapping.len() != self.num_qubits()`, [`CircuitError::QubitOutOfRange`]
    /// when a mapped index is `>= new_width`, and
    /// [`CircuitError::DuplicateQubit`] when the mapping sends two operands
    /// of one gate to the same target.
    pub fn try_remapped(
        &self,
        mapping: &[usize],
        new_width: usize,
    ) -> Result<Circuit, CircuitError> {
        if mapping.len() != self.num_qubits {
            return Err(CircuitError::MappingLength {
                expected: self.num_qubits,
                actual: mapping.len(),
            });
        }
        let mut out = Circuit::new(new_width);
        for inst in &self.instructions {
            let qubits: Vec<usize> = inst.qubits.iter().map(|&q| mapping[q]).collect();
            out.try_push(inst.gate, &qubits)?;
        }
        Ok(out)
    }

    /// Returns this circuit re-targeted onto a larger register: local qubit
    /// `i` maps to `mapping[i]`.
    ///
    /// # Panics
    ///
    /// Panics on an invalid mapping; see [`Circuit::try_remapped`].
    pub fn remapped(&self, mapping: &[usize], new_width: usize) -> Circuit {
        self.try_remapped(mapping, new_width)
            .unwrap_or_else(|e| panic!("{e}"))
    }

    /// Width limit for [`Circuit::unitary`]: beyond 14 qubits the dense
    /// matrix would exceed ~4 GiB.
    pub const MAX_DENSE_QUBITS: usize = 14;

    /// The full `2^n × 2^n` unitary of the circuit.
    ///
    /// Cost is `O(len · 4^n)`; intended for circuits up to ~10 qubits (QUEST
    /// blocks are ≤4). Use `qsim`'s statevector simulator for larger widths.
    ///
    /// # Errors
    ///
    /// Returns [`CircuitError::TooWide`] for circuits wider than
    /// [`Circuit::MAX_DENSE_QUBITS`].
    pub fn try_unitary(&self) -> Result<Matrix, CircuitError> {
        if self.num_qubits > Self::MAX_DENSE_QUBITS {
            return Err(CircuitError::TooWide {
                num_qubits: self.num_qubits,
                max: Self::MAX_DENSE_QUBITS,
            });
        }
        let dim = 1usize << self.num_qubits;
        let mut u = Matrix::identity(dim);
        for inst in &self.instructions {
            qmath::kernels::LocalOp::new(&inst.gate.matrix(), &inst.qubits, self.num_qubits)
                .apply_left_inplace(&mut u);
        }
        Ok(u)
    }

    /// The full `2^n × 2^n` unitary of the circuit.
    ///
    /// # Panics
    ///
    /// Panics for circuits wider than [`Circuit::MAX_DENSE_QUBITS`]; see
    /// [`Circuit::try_unitary`].
    pub fn unitary(&self) -> Matrix {
        self.try_unitary().unwrap_or_else(|e| panic!("{e}"))
    }
}

impl fmt::Display for Circuit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "circuit on {} qubits:", self.num_qubits)?;
        for inst in &self.instructions {
            writeln!(f, "  {inst};")?;
        }
        Ok(())
    }
}

impl<'a> IntoIterator for &'a Circuit {
    type Item = &'a Instruction;
    type IntoIter = std::slice::Iter<'a, Instruction>;
    fn into_iter(self) -> Self::IntoIter {
        self.instructions.iter()
    }
}

impl Extend<Instruction> for Circuit {
    fn extend<T: IntoIterator<Item = Instruction>>(&mut self, iter: T) {
        for inst in iter {
            self.push(inst.gate, &inst.qubits.clone());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmath::{Vector, C64};

    #[test]
    fn bell_state_unitary() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let u = c.unitary();
        let out = Vector::basis_state(4, 0).transformed(&u);
        let r = std::f64::consts::FRAC_1_SQRT_2;
        assert!(out[0].approx_eq(C64::real(r), 1e-12));
        assert!(out[3].approx_eq(C64::real(r), 1e-12));
        assert!(out[1].abs() < 1e-12 && out[2].abs() < 1e-12);
    }

    #[test]
    fn inverse_circuit_undoes() {
        let mut c = Circuit::new(3);
        c.h(0).cnot(0, 1).rz(1, 0.3).cnot(1, 2).t(2).swap(0, 2);
        let u = c.unitary();
        let ui = c.inverse().unitary();
        assert!(u.matmul(&ui).approx_eq(&Matrix::identity(8), 1e-9));
    }

    #[test]
    fn depth_computation() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2); // depth 1 (parallel)
        assert_eq!(c.depth(), 1);
        c.cnot(0, 1); // depth 2
        assert_eq!(c.depth(), 2);
        c.cnot(1, 2); // depth 3
        assert_eq!(c.depth(), 3);
        c.h(0); // still depth 3 (q0 free at level 2→3)
        assert_eq!(c.depth(), 3);
    }

    #[test]
    fn cnot_count_includes_swap_expansion() {
        let mut c = Circuit::new(3);
        c.cnot(0, 1).cz(1, 2).swap(0, 2);
        assert_eq!(c.cnot_count(), 1 + 1 + 3);
        assert_eq!(c.two_qubit_count(), 3);
    }

    #[test]
    fn try_extend_from_rejects_width_mismatch() {
        let mut a = Circuit::new(2);
        let b = Circuit::new(3);
        assert_eq!(
            a.try_extend_from(&b).unwrap_err(),
            CircuitError::WidthMismatch { left: 2, right: 3 }
        );
        let mut c = Circuit::new(3);
        c.h(0);
        c.try_extend_from(&b).unwrap();
    }

    #[test]
    fn try_remapped_rejects_bad_mappings() {
        let mut block = Circuit::new(2);
        block.cnot(0, 1);
        assert_eq!(
            block.try_remapped(&[0], 3).unwrap_err(),
            CircuitError::MappingLength {
                expected: 2,
                actual: 1
            }
        );
        assert_eq!(
            block.try_remapped(&[0, 5], 3).unwrap_err(),
            CircuitError::QubitOutOfRange {
                qubit: 5,
                num_qubits: 3
            }
        );
        assert_eq!(
            block.try_remapped(&[1, 1], 3).unwrap_err(),
            CircuitError::DuplicateQubit { qubit: 1 }
        );
        assert!(block.try_remapped(&[2, 0], 3).is_ok());
    }

    #[test]
    fn try_unitary_rejects_too_wide() {
        let c = Circuit::new(Circuit::MAX_DENSE_QUBITS + 1);
        assert_eq!(
            c.try_unitary().unwrap_err(),
            CircuitError::TooWide {
                num_qubits: Circuit::MAX_DENSE_QUBITS + 1,
                max: Circuit::MAX_DENSE_QUBITS
            }
        );
    }

    #[test]
    #[should_panic(expected = "cannot compose circuits of widths")]
    fn extend_from_panics_with_typed_message() {
        let mut a = Circuit::new(2);
        let b = Circuit::new(3);
        a.extend_from(&b);
    }

    #[test]
    fn remapped_acts_on_target_qubits() {
        // X on local qubit 0 → X on global qubit 2.
        let mut block = Circuit::new(2);
        block.x(0).cnot(0, 1);
        let full = block.remapped(&[2, 0], 3);
        assert_eq!(full.instructions()[0].qubits, vec![2]);
        assert_eq!(full.instructions()[1].qubits, vec![2, 0]);
        assert_eq!(full.num_qubits(), 3);
    }

    #[test]
    fn remapped_preserves_unitary_under_identity_mapping() {
        let mut c = Circuit::new(3);
        c.h(0).cnot(1, 2).rz(0, 0.7);
        let same = c.remapped(&[0, 1, 2], 3);
        assert!(c.unitary().approx_eq(&same.unitary(), 1e-12));
    }

    #[test]
    fn try_push_errors() {
        let mut c = Circuit::new(2);
        assert_eq!(
            c.try_push(Gate::Cnot, &[0]),
            Err(CircuitError::ArityMismatch {
                gate: "cx",
                expected: 2,
                actual: 1
            })
        );
        assert_eq!(
            c.try_push(Gate::H, &[5]),
            Err(CircuitError::QubitOutOfRange {
                qubit: 5,
                num_qubits: 2
            })
        );
        assert_eq!(
            c.try_push(Gate::Cnot, &[1, 1]),
            Err(CircuitError::DuplicateQubit { qubit: 1 })
        );
        assert!(c.is_empty());
    }

    #[test]
    fn extend_from_concatenates() {
        let mut a = Circuit::new(2);
        a.h(0);
        let mut b = Circuit::new(2);
        b.cnot(0, 1);
        a.extend_from(&b);
        assert_eq!(a.len(), 2);
        // Matches building directly.
        let mut direct = Circuit::new(2);
        direct.h(0).cnot(0, 1);
        assert!(a.unitary().approx_eq(&direct.unitary(), 1e-12));
    }

    #[test]
    fn active_qubits_skips_idle() {
        let mut c = Circuit::new(5);
        c.h(1).cnot(1, 3);
        assert_eq!(c.active_qubits(), vec![1, 3]);
    }

    #[test]
    fn ghz_statistics() {
        let mut c = Circuit::new(4);
        c.h(0);
        for q in 0..3 {
            c.cnot(q, q + 1);
        }
        assert_eq!(c.len(), 4);
        assert_eq!(c.cnot_count(), 3);
        assert_eq!(c.one_qubit_count(), 1);
        assert_eq!(c.depth(), 4);
    }

    #[test]
    fn gate_counts_histogram() {
        let mut c = Circuit::new(2);
        c.h(0).h(1).cnot(0, 1).rz(1, 0.5).rz(0, 0.2);
        let counts = c.gate_counts();
        assert_eq!(counts, vec![("cx", 1), ("h", 2), ("rz", 2)]);
    }

    #[test]
    fn display_lists_instructions() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let s = c.to_string();
        assert!(s.contains("h q[0];"));
        assert!(s.contains("cx q[0],q[1];"));
    }
}
