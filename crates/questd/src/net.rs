//! Nonblocking connection I/O for the daemon's readiness event loop.
//!
//! The workspace is std-only (no `mio`, no `libc`), so the event loop is
//! the portable form the ROADMAP sanctions: every socket is nonblocking
//! and one poll thread multiplexes them all, sleeping on a `Notifier`
//! condvar between ticks so idle connections cost no threads and no
//! busy-spin. This module owns the per-connection I/O state machines:
//!
//! - [`ConnWriter`] — the buffered outbound half. `send` only appends to
//!   an in-memory buffer (so compile workers never block on a slow
//!   client); the poll thread drains it with `ConnWriter::flush`, which
//!   survives partial writes and `WouldBlock`. A bounded buffer turns a
//!   client that never reads into an overflow verdict instead of
//!   unbounded memory growth.
//! - [`TokenBucket`] — connection- and submission-rate limiting. Refill
//!   is computed from the caller-supplied tick time, so tests pin
//!   behaviour deterministically with `per_second: 0.0` (pure burst).
//! - `Notifier` — the poll thread's wakeup: writers nudge it after
//!   enqueuing output so flushes happen promptly instead of on the next
//!   timed tick.
//!
//! Fault injection: `questd.net.write` (flush fails like a torn
//! connection) and `questd.net.partial_write` (flush moves at most one
//! byte, exercising the partial-write resume path) hook into
//! `ConnWriter::flush`; the accept/read sites live in the server's poll
//! loop.

use crate::protocol::Event;
use std::io::Write;
use std::net::TcpStream;
use std::sync::{Arc, Condvar, Mutex, PoisonError};
use std::time::{Duration, Instant};

/// A token-bucket rate limit: up to `burst` operations instantly, then
/// `per_second` sustained. `per_second: 0.0` never refills — useful for
/// deterministic tests (exactly `burst` operations ever succeed).
#[derive(Clone, Copy, Debug)]
pub struct RateLimit {
    /// Bucket capacity: the largest tolerated burst.
    pub burst: u32,
    /// Sustained refill rate, tokens per second.
    pub per_second: f64,
}

/// Runtime state for one [`RateLimit`].
#[derive(Debug)]
pub struct TokenBucket {
    limit: RateLimit,
    tokens: f64,
    last_refill: Instant,
}

impl TokenBucket {
    /// A full bucket as of `now`.
    pub fn new(limit: RateLimit, now: Instant) -> TokenBucket {
        TokenBucket {
            limit,
            tokens: f64::from(limit.burst),
            last_refill: now,
        }
    }

    /// Takes one token if available, refilling first from the elapsed
    /// wall-clock time (`now` is passed in so the caller controls the
    /// clock reads).
    pub fn try_take(&mut self, now: Instant) -> bool {
        let elapsed = now.saturating_duration_since(self.last_refill);
        self.last_refill = now;
        self.tokens = (self.tokens + elapsed.as_secs_f64() * self.limit.per_second)
            .min(f64::from(self.limit.burst));
        if self.tokens >= 1.0 {
            self.tokens -= 1.0;
            true
        } else {
            false
        }
    }
}

/// Tunables for the event loop's hostile-network defenses. Part of
/// `ServerConfig`; the defaults are production-shaped, tests tighten them
/// to make deadlines observable.
#[derive(Clone, Debug)]
pub struct NetConfig {
    /// How long a *partial* request line may sit unfinished before the
    /// connection is reaped (anti-slow-loris). Complete quiet between
    /// requests is not limited — idle keepalive connections are free.
    pub read_deadline: Duration,
    /// How long buffered outbound data may make zero progress (socket
    /// full, client not reading) before the connection is reaped.
    pub write_deadline: Duration,
    /// Hard cap on one NDJSON request line. A line that exceeds it gets
    /// `invalid_request` and the connection is closed — the buffer never
    /// grows without bound.
    pub max_line_bytes: usize,
    /// Hard cap on buffered outbound bytes per connection; beyond it the
    /// connection is reaped (the client has stopped reading).
    pub max_outbound_bytes: usize,
    /// Accept-rate limit across all connections. `None` = unlimited.
    pub accept_rate: Option<RateLimit>,
    /// Per-connection submission-rate limit. `None` = unlimited.
    pub submit_rate: Option<RateLimit>,
}

impl Default for NetConfig {
    fn default() -> NetConfig {
        NetConfig {
            read_deadline: Duration::from_secs(30),
            write_deadline: Duration::from_secs(10),
            max_line_bytes: 1 << 20,
            max_outbound_bytes: 16 << 20,
            accept_rate: None,
            submit_rate: None,
        }
    }
}

/// The poll thread's wakeup latch: a condvar the loop sleeps on between
/// ticks, nudged by anything that creates work (a writer enqueuing
/// output, a drain request). Spurious wakeups are harmless — the loop
/// just re-scans.
pub(crate) struct Notifier {
    flag: Mutex<bool>,
    cv: Condvar,
}

impl Notifier {
    pub(crate) fn new() -> Notifier {
        Notifier {
            flag: Mutex::new(false),
            cv: Condvar::new(),
        }
    }

    /// Wakes the poll thread (or makes its next sleep return instantly).
    pub(crate) fn notify(&self) {
        let mut flag = self.flag.lock().unwrap_or_else(PoisonError::into_inner);
        *flag = true;
        self.cv.notify_all();
    }

    /// Sleeps until notified or `timeout`, then clears the latch.
    pub(crate) fn wait_timeout(&self, timeout: Duration) {
        let flag = self.flag.lock().unwrap_or_else(PoisonError::into_inner);
        let (mut flag, _) = self
            .cv
            .wait_timeout(flag, timeout)
            .unwrap_or_else(PoisonError::into_inner);
        *flag = false;
    }
}

struct OutBuf {
    buf: Vec<u8>,
    written: usize,
    closed: bool,
    overflowed: bool,
    max: usize,
}

/// What one `ConnWriter::flush` accomplished; the poll loop turns this
/// into keep/close/reap verdicts.
#[derive(Debug, PartialEq, Eq)]
pub(crate) enum FlushStatus {
    /// Nothing buffered.
    Idle,
    /// Some bytes hit the socket; `pending` bytes remain buffered.
    Wrote {
        /// Bytes still buffered after the write.
        pending: usize,
    },
    /// The socket was not writable; no progress (write-deadline clock
    /// keeps running).
    Blocked,
    /// The outbound cap was exceeded — the client stopped reading; reap.
    Overflowed,
    /// Hard write error — the connection is gone.
    Error,
}

/// Buffered outbound half of one client connection.
///
/// `send` is called from compile workers and the poll thread alike; it
/// appends one serialized event line to the buffer and never touches the
/// socket, so a stalled client can never block a worker. The poll thread
/// owns the socket and drains the buffer via `flush`.
pub struct ConnWriter {
    out: Mutex<OutBuf>,
    wake: Arc<Notifier>,
}

impl ConnWriter {
    /// A writer with an empty buffer capped at `max_outbound_bytes`.
    pub(crate) fn new(wake: Arc<Notifier>, max_outbound_bytes: usize) -> ConnWriter {
        ConnWriter {
            out: Mutex::new(OutBuf {
                buf: Vec::new(),
                written: 0,
                closed: false,
                overflowed: false,
                max: max_outbound_bytes.max(1),
            }),
            wake,
        }
    }

    /// Enqueues one event as one newline-terminated JSON line and wakes
    /// the poll thread to flush it.
    pub fn send(&self, event: &Event) -> std::io::Result<()> {
        if let Some(e) = qfault::inject!("questd.socket.write", io) {
            return Err(e);
        }
        let mut line = event.to_json().compact();
        line.push('\n');
        {
            let mut out = self.out.lock().unwrap_or_else(PoisonError::into_inner);
            if out.closed || out.overflowed {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::BrokenPipe,
                    "connection is closed",
                ));
            }
            if out.buf.len() - out.written + line.len() > out.max {
                out.overflowed = true;
                return Err(std::io::Error::new(
                    std::io::ErrorKind::WouldBlock,
                    "outbound buffer overflow (client not reading)",
                ));
            }
            out.buf.extend_from_slice(line.as_bytes());
        }
        self.wake.notify();
        Ok(())
    }

    /// True while buffered bytes remain unflushed.
    pub(crate) fn has_pending(&self) -> bool {
        let out = self.out.lock().unwrap_or_else(PoisonError::into_inner);
        out.buf.len() > out.written
    }

    /// Marks the writer dead: later `send`s fail fast instead of
    /// buffering into the void.
    pub(crate) fn close(&self) {
        self.out
            .lock()
            .unwrap_or_else(PoisonError::into_inner)
            .closed = true;
    }

    /// Writes as much buffered output to `stream` as the socket accepts
    /// right now. Nonblocking: `WouldBlock` is a status, not an error.
    pub(crate) fn flush(&self, stream: &mut TcpStream) -> FlushStatus {
        let mut out = self.out.lock().unwrap_or_else(PoisonError::into_inner);
        if out.overflowed {
            return FlushStatus::Overflowed;
        }
        if out.written == out.buf.len() {
            out.buf.clear();
            out.written = 0;
            return FlushStatus::Idle;
        }
        if qfault::inject!("questd.net.write", io).is_some() {
            return FlushStatus::Error;
        }
        // Fault: move at most one byte per flush, exercising the
        // partial-write resume path byte by byte.
        let end = if qfault::inject!("questd.net.partial_write", io).is_some() {
            out.written + 1
        } else {
            out.buf.len()
        };
        let range = out.written..end;
        match stream.write(&out.buf[range]) {
            Ok(0) => FlushStatus::Error,
            Ok(n) => {
                out.written += n;
                if out.written == out.buf.len() {
                    out.buf.clear();
                    out.written = 0;
                } else if out.written > 4096 {
                    let written = out.written;
                    out.buf.drain(..written);
                    out.written = 0;
                }
                FlushStatus::Wrote {
                    pending: out.buf.len() - out.written,
                }
            }
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => FlushStatus::Blocked,
            Err(e) if e.kind() == std::io::ErrorKind::Interrupted => FlushStatus::Blocked,
            Err(_) => FlushStatus::Error,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_bucket_enforces_burst_then_refills() {
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(
            RateLimit {
                burst: 2,
                per_second: 10.0,
            },
            t0,
        );
        assert!(bucket.try_take(t0));
        assert!(bucket.try_take(t0));
        assert!(!bucket.try_take(t0), "burst exhausted");
        // 100 ms at 10 tokens/s refills exactly one token.
        let t1 = t0 + Duration::from_millis(100);
        assert!(bucket.try_take(t1));
        assert!(!bucket.try_take(t1));
    }

    #[test]
    fn zero_refill_bucket_is_pure_burst() {
        let t0 = Instant::now();
        let mut bucket = TokenBucket::new(
            RateLimit {
                burst: 3,
                per_second: 0.0,
            },
            t0,
        );
        for _ in 0..3 {
            assert!(bucket.try_take(t0));
        }
        // No amount of elapsed time refills a zero-rate bucket.
        assert!(!bucket.try_take(t0 + Duration::from_secs(3600)));
    }
}
