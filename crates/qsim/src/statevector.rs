//! Statevector simulation with in-place gate application.
//!
//! Gates are applied directly to the `2^n` amplitude array — `O(2^n)` per
//! gate — rather than by materializing `2^n × 2^n` unitaries, so ideal
//! ("ground truth") outputs stay cheap for every circuit width the paper
//! evaluates in simulation (≤16 qubits).

use qcircuit::{Circuit, Gate, Instruction};
use qmath::{Matrix, Vector, C64};
use rand::Rng;

/// A statevector on `n` qubits supporting in-place gate application.
///
/// Follows the workspace convention: qubit 0 is the most significant bit of
/// the basis index.
#[derive(Clone, Debug, PartialEq)]
pub struct Statevector {
    num_qubits: usize,
    amps: Vec<C64>,
}

impl Statevector {
    /// The all-zeros state `|0…0⟩`.
    pub fn zero_state(num_qubits: usize) -> Self {
        let mut amps = vec![C64::ZERO; 1 << num_qubits];
        amps[0] = C64::ONE;
        Statevector { num_qubits, amps }
    }

    /// A computational basis state `|k⟩`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= 2^num_qubits`.
    pub fn basis_state(num_qubits: usize, k: usize) -> Self {
        assert!(k < (1 << num_qubits), "basis index out of range");
        let mut amps = vec![C64::ZERO; 1 << num_qubits];
        amps[k] = C64::ONE;
        Statevector { num_qubits, amps }
    }

    /// Runs `circuit` on `|0…0⟩` and returns the final state.
    pub fn run(circuit: &Circuit) -> Self {
        let _span = qobs::span!(
            "qsim.statevector_run",
            qubits = circuit.num_qubits(),
            gates = circuit.len(),
        );
        qobs::metrics::counter("qsim.statevector_runs", 1);
        qobs::metrics::counter("qsim.gates_applied", circuit.len() as u64);
        let mut sv = Statevector::zero_state(circuit.num_qubits());
        sv.apply_circuit(circuit);
        sv
    }

    /// Number of qubits.
    #[inline]
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// Borrow of the amplitudes.
    #[inline]
    pub fn amplitudes(&self) -> &[C64] {
        &self.amps
    }

    /// Applies every instruction of `circuit` in order.
    ///
    /// # Panics
    ///
    /// Panics if the circuit width differs from the state's.
    pub fn apply_circuit(&mut self, circuit: &Circuit) {
        assert_eq!(
            circuit.num_qubits(),
            self.num_qubits,
            "circuit width mismatch"
        );
        for inst in circuit.iter() {
            self.apply_instruction(inst);
        }
    }

    /// Applies a single instruction.
    pub fn apply_instruction(&mut self, inst: &Instruction) {
        match inst.gate.num_qubits() {
            1 => self.apply_1q(&inst.gate.matrix(), inst.qubits[0]),
            _ => self.apply_2q(&inst.gate.matrix(), inst.qubits[0], inst.qubits[1]),
        }
    }

    /// Applies a 2×2 matrix to qubit `q` in place.
    pub fn apply_1q(&mut self, m: &Matrix, q: usize) {
        debug_assert_eq!(m.rows(), 2);
        let n = self.num_qubits;
        let shift = n - 1 - q; // qubit 0 = MSB
        let mask = 1usize << shift;
        let (m00, m01, m10, m11) = (m[(0, 0)], m[(0, 1)], m[(1, 0)], m[(1, 1)]);
        let dim = self.amps.len();
        let mut base = 0usize;
        while base < dim {
            if base & mask == 0 {
                for i in base..base + mask.min(dim - base) {
                    let j = i | mask;
                    let a0 = self.amps[i];
                    let a1 = self.amps[j];
                    self.amps[i] = m00 * a0 + m01 * a1;
                    self.amps[j] = m10 * a0 + m11 * a1;
                }
                base += mask;
            }
            base += mask;
        }
    }

    /// Applies a 4×4 matrix to qubits `(a, b)` in place, `a` being the most
    /// significant bit of the 4×4 index.
    pub fn apply_2q(&mut self, m: &Matrix, a: usize, b: usize) {
        debug_assert_eq!(m.rows(), 4);
        debug_assert_ne!(a, b);
        let n = self.num_qubits;
        let sa = n - 1 - a;
        let sb = n - 1 - b;
        let ma = 1usize << sa;
        let mb = 1usize << sb;
        let dim = self.amps.len();
        for i in 0..dim {
            // Visit each 4-amplitude group once, from its 00 representative.
            if i & ma != 0 || i & mb != 0 {
                continue;
            }
            let i00 = i;
            let i01 = i | mb;
            let i10 = i | ma;
            let i11 = i | ma | mb;
            let a00 = self.amps[i00];
            let a01 = self.amps[i01];
            let a10 = self.amps[i10];
            let a11 = self.amps[i11];
            self.amps[i00] = m[(0, 0)] * a00 + m[(0, 1)] * a01 + m[(0, 2)] * a10 + m[(0, 3)] * a11;
            self.amps[i01] = m[(1, 0)] * a00 + m[(1, 1)] * a01 + m[(1, 2)] * a10 + m[(1, 3)] * a11;
            self.amps[i10] = m[(2, 0)] * a00 + m[(2, 1)] * a01 + m[(2, 2)] * a10 + m[(2, 3)] * a11;
            self.amps[i11] = m[(3, 0)] * a00 + m[(3, 1)] * a01 + m[(3, 2)] * a10 + m[(3, 3)] * a11;
        }
    }

    /// Applies a bare [`Gate`] to the given qubits.
    pub fn apply_gate(&mut self, gate: Gate, qubits: &[usize]) {
        self.apply_instruction(&Instruction::new(gate, qubits.to_vec()));
    }

    /// Measurement probabilities per basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        self.amps.iter().map(|z| z.norm_sqr()).collect()
    }

    /// Samples one measurement outcome (a basis-state index).
    pub fn sample(&self, rng: &mut impl Rng) -> usize {
        sample_index(&self.probabilities(), rng)
    }

    /// Samples `shots` measurement outcomes and returns per-state counts.
    pub fn sample_counts(&self, shots: usize, rng: &mut impl Rng) -> Vec<u64> {
        let probs = self.probabilities();
        let mut counts = vec![0u64; self.amps.len()];
        for _ in 0..shots {
            counts[sample_index(&probs, rng)] += 1;
        }
        counts
    }

    /// L2 norm of the state (1 for any state produced by unitary evolution).
    pub fn norm(&self) -> f64 {
        self.amps.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Converts into a plain [`Vector`].
    pub fn into_vector(self) -> Vector {
        Vector::from_vec(self.amps)
    }
}

/// Samples an index from an (unnormalized is tolerated) probability vector.
pub(crate) fn sample_index(probs: &[f64], rng: &mut impl Rng) -> usize {
    let total: f64 = probs.iter().sum();
    let mut r: f64 = rng.random::<f64>() * total;
    for (i, &p) in probs.iter().enumerate() {
        r -= p;
        if r <= 0.0 {
            return i;
        }
    }
    probs.len() - 1
}

/// Converts integer counts into a normalized probability distribution.
pub fn counts_to_probs(counts: &[u64]) -> Vec<f64> {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return vec![0.0; counts.len()];
    }
    counts.iter().map(|&c| c as f64 / total as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn x_flips_msb_qubit() {
        let mut sv = Statevector::zero_state(2);
        sv.apply_gate(Gate::X, &[0]);
        // |00⟩ → |10⟩ = index 2
        assert!(sv.amplitudes()[2].approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn matches_dense_unitary_on_random_circuit() {
        let mut c = Circuit::new(3);
        c.h(0)
            .cnot(0, 2)
            .rz(2, 0.37)
            .ry(1, -0.9)
            .swap(1, 2)
            .cz(0, 1)
            .u3(2, 0.5, 1.0, -0.3)
            .cnot(2, 0);
        let sv = Statevector::run(&c);
        let dense = c.unitary();
        let expect = Vector::basis_state(8, 0).transformed(&dense);
        for (a, b) in sv.amplitudes().iter().zip(expect.as_slice()) {
            assert!(a.approx_eq(*b, 1e-10), "{a:?} vs {b:?}");
        }
    }

    #[test]
    fn ghz_distribution_is_bimodal() {
        let mut c = Circuit::new(4);
        c.h(0);
        for q in 0..3 {
            c.cnot(q, q + 1);
        }
        let probs = Statevector::run(&c).probabilities();
        assert!((probs[0] - 0.5).abs() < 1e-12);
        assert!((probs[15] - 0.5).abs() < 1e-12);
        assert!(probs[1..15].iter().all(|&p| p < 1e-12));
    }

    #[test]
    fn norm_is_preserved() {
        let mut c = Circuit::new(3);
        c.h(0).h(1).h(2).cnot(0, 1).rz(2, 1.0).cnot(1, 2);
        let sv = Statevector::run(&c);
        assert!((sv.norm() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn sampling_tracks_probabilities() {
        let mut c = Circuit::new(1);
        c.h(0);
        let sv = Statevector::run(&c);
        let mut rng = StdRng::seed_from_u64(1);
        let counts = sv.sample_counts(10_000, &mut rng);
        let p0 = counts[0] as f64 / 10_000.0;
        assert!((p0 - 0.5).abs() < 0.03, "p0 = {p0}");
    }

    #[test]
    fn counts_to_probs_normalizes() {
        assert_eq!(counts_to_probs(&[1, 3]), vec![0.25, 0.75]);
        assert_eq!(counts_to_probs(&[0, 0]), vec![0.0, 0.0]);
    }

    #[test]
    fn basis_state_runs() {
        let sv = Statevector::basis_state(3, 5);
        assert!(sv.amplitudes()[5].approx_eq(C64::ONE, 1e-12));
    }

    #[test]
    fn apply_2q_nonadjacent_matches_embed() {
        let mut c = Circuit::new(4);
        c.h(0).h(1).h(2).h(3).cnot(3, 0);
        let sv = Statevector::run(&c);
        let expect = Vector::basis_state(16, 0).transformed(&c.unitary());
        for (a, b) in sv.amplitudes().iter().zip(expect.as_slice()) {
            assert!(a.approx_eq(*b, 1e-10));
        }
    }
}
