//! Figure 15: circuit-shrinkage illustration — gate/CNOT counts of the
//! Baseline circuit vs. one QUEST approximation for late-timestep TFIM and
//! Heisenberg circuits.

use quest::Quest;

fn main() {
    for (name, circuit) in [
        ("TFIM (t=8)", qbench::spin::tfim(4, 8, 0.1)),
        ("TFIM (t=3)", qbench::spin::tfim(4, 3, 0.1)),
        ("Heisenberg (t=4)", qbench::spin::heisenberg(4, 4, 0.1)),
        ("Heisenberg (t=2)", qbench::spin::heisenberg(4, 2, 0.1)),
    ] {
        // Paper-faithful width-only partitioning: the whole 4-qubit
        // evolution is one block, so synthesis can collapse arbitrarily
        // deep Trotterization into a bounded-depth circuit — the mechanism
        // behind the paper's 900→11 CNOT Heisenberg shrinkage.
        let mut cfg = bench::harness_config();
        cfg.max_block_gates = None;
        cfg.max_synthesis_cnots = 14;
        cfg.synthesis.optimizer.max_iters = 400;
        cfg.synthesis.optimizer.restarts = 3;
        let mut result = Quest::new(cfg).compile(&circuit);
        bench::apply_qiskit_to_samples(&mut result);
        let best = result.min_cnot_sample().expect("QUEST selected no samples");
        let rows = vec![
            vec![
                "Baseline".to_string(),
                circuit.len().to_string(),
                circuit.cnot_count().to_string(),
                circuit.depth().to_string(),
            ],
            vec![
                "QUEST approx".to_string(),
                best.circuit.len().to_string(),
                best.cnot_count.to_string(),
                best.circuit.depth().to_string(),
            ],
        ];
        bench::print_table(
            &format!("Fig. 15: {name} circuit shrinkage"),
            &["circuit", "gates", "CNOTs", "depth"],
            &rows,
        );
        println!(
            "CNOT reduction of shown approximation: {:.1}%",
            100.0 * (1.0 - best.cnot_count as f64 / circuit.cnot_count() as f64)
        );
        let truth = qsim::Statevector::run(&circuit).probabilities();
        let avg = quest::evaluate::averaged_ideal_distribution(&result);
        println!(
            "averaged ideal-output TVD of the {} selected samples: {:.3}",
            result.samples.len(),
            qsim::tvd(&truth, &avg)
        );
    }
}
