//! Dense complex linear algebra tailored to quantum-circuit synthesis.
//!
//! This crate is the numerical substrate of the QUEST reproduction. It
//! provides:
//!
//! * [`C64`] — a `f64`-based complex number with the full arithmetic surface
//!   needed by unitary algebra,
//! * [`Matrix`] — a dense, row-major complex matrix with products, Kronecker
//!   products, daggers, traces and unitarity checks,
//! * [`Vector`] — a complex column vector (used as a quantum statevector),
//! * [`hs`] — the Hilbert–Schmidt inner product and the *process distance*
//!   `sqrt(1 - |Tr(U† V)|² / N²)` that QUEST's synthesis and theoretical
//!   bound (paper Sec. 3.8) are built on,
//! * [`kernels`] — bit-strided local gate-application kernels (the synthesis
//!   hot path: applying a 1-/2-qubit operator to a dense matrix in place),
//!   including batched structure-of-arrays variants that evaluate many
//!   optimizer starts per traversal,
//! * [`simd`] — the vectorized complex multiply-accumulate primitives under
//!   the kernels, with a strict (bit-exact) default and an optional
//!   `simd-relaxed` FMA/AVX-512 mode,
//! * [`random`] — Haar-random unitaries via QR of Ginibre matrices,
//! * [`decompose`] — the ZYZ Euler decomposition of 2×2 unitaries used by the
//!   transpiler's single-qubit fusion pass.
//!
//! # Example
//!
//! ```
//! use qmath::{C64, Matrix, hs};
//!
//! let x = Matrix::from_rows(&[
//!     &[C64::ZERO, C64::ONE],
//!     &[C64::ONE, C64::ZERO],
//! ]);
//! assert!(x.is_unitary(1e-12));
//! // A unitary has zero process distance to itself.
//! assert!(hs::process_distance(&x, &x) < 1e-9);
//! ```

#![deny(missing_docs)]

pub mod complex;
pub mod decompose;
pub mod eigen;
pub mod hs;
pub mod kernels;
pub mod matrix;
pub mod random;
pub mod simd;
pub mod vector;

pub use complex::C64;
pub use matrix::Matrix;
pub use simd::NUMERICS_MODE;
pub use vector::Vector;

/// Tolerance used throughout the workspace when comparing floating-point
/// linear-algebra results that have accumulated a few hundred operations.
pub const DEFAULT_TOL: f64 = 1e-9;

/// Returns `true` when two floats differ by at most `tol`.
///
/// Small convenience shared by tests across the workspace.
///
/// ```
/// assert!(qmath::approx_eq(1.0, 1.0 + 1e-12, 1e-9));
/// assert!(!qmath::approx_eq(1.0, 1.1, 1e-9));
/// ```
pub fn approx_eq(a: f64, b: f64, tol: f64) -> bool {
    (a - b).abs() <= tol
}
