//! Hostile-network integration tests over real TCP: the drain contract,
//! eager deadline eviction, protocol edge cases (oversized lines, garbage
//! bytes, half-open peers), token-bucket rate limiting under a connect
//! storm, and the retrying client riding out transient refusals. Every
//! scenario uses event sequencing or generous deadline margins — no
//! timing assumption tighter than hundreds of milliseconds.

use questd::{
    Client, ErrorCode, Event, JobConfig, JobOutcome, NetConfig, RateLimit, RetryPolicy,
    RetryingClient, Server, ServerConfig, SubmitRequest,
};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::time::Duration;

/// A 3-qubit circuit, enough work to keep a worker busy for the duration
/// of a few client round-trips.
const QASM: &str = r#"OPENQASM 2.0;
include "qelib1.inc";
qreg q[3];
h q[0];
cx q[0],q[1];
rz(pi/8) q[1];
cx q[0],q[1];
cx q[1],q[2];
rz(pi/8) q[2];
cx q[1],q[2];
cx q[0],q[1];
rz(pi/8) q[1];
cx q[0],q[1];
"#;

/// A distinct second circuit (different fingerprint for any config).
const QASM_OTHER: &str = r#"OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
h q[0];
cx q[0],q[1];
rz(pi/4) q[1];
cx q[0],q[1];
h q[1];
"#;

fn fast_config(seed: u64) -> JobConfig {
    JobConfig {
        fast: true,
        max_samples: Some(2),
        seed: Some(seed),
        ..JobConfig::default()
    }
}

fn submit(id: &str, qasm: &str, config: JobConfig) -> SubmitRequest {
    SubmitRequest {
        id: id.into(),
        qasm: qasm.into(),
        config,
        priority: 5,
        queue_deadline_ms: None,
    }
}

fn start_server(workers: usize, queue_capacity: usize, net: NetConfig) -> Server {
    Server::bind(
        "127.0.0.1:0",
        ServerConfig {
            workers,
            queue_capacity,
            net,
            ..ServerConfig::default()
        },
    )
    .expect("bind ephemeral port")
}

/// Blocks until the `started` event for `id` arrives on this client.
fn wait_started(client: &mut Client, id: &str) {
    loop {
        match client.recv().expect("event stream") {
            Event::Started { id: got } if got == id => return,
            Event::Error {
                id: got,
                code,
                message,
            } => {
                panic!("unexpected error while waiting for started({id}): {got:?} {code} {message}")
            }
            _ => {}
        }
    }
}

/// The drain contract end to end: `shutdown` answers with `draining`,
/// already-queued work still completes, new submissions are refused with
/// `shutting_down`, and the drain finishes well inside its deadline.
#[test]
fn drain_finishes_queued_work_and_rejects_new_submissions() {
    let server = start_server(1, 16, NetConfig::default());
    let addr = server.local_addr();

    let mut blocker = Client::connect(addr).expect("connect");
    blocker
        .submit(submit("blocker", QASM_OTHER, fast_config(1)))
        .expect("submit blocker");
    wait_started(&mut blocker, "blocker");

    // A second job sits in the queue when the drain begins.
    let mut queued = Client::connect(addr).expect("connect");
    queued
        .submit(submit("queued", QASM, fast_config(2)))
        .expect("submit queued");
    match queued.recv().expect("accepted") {
        Event::Accepted { deduplicated, .. } => assert!(!deduplicated),
        other => panic!("expected accepted, got {other:?}"),
    }

    // Connected before the drain: a draining server stops *accepting*,
    // so only pre-drain connections can observe the shutting_down refusal.
    let mut admin = Client::connect(addr).expect("connect");
    let mut late = Client::connect(addr).expect("connect");
    late.ping().expect("late conn accepted before drain");

    let still_queued = admin.shutdown_server().expect("draining event");
    assert_eq!(still_queued, 1, "exactly the queued job was waiting");

    // The shutdown op is idempotent.
    assert_eq!(admin.shutdown_server().expect("draining again"), 1);

    // New submissions — on any pre-drain connection — bounce.
    match late
        .submit_and_wait(submit("late", QASM, fast_config(3)))
        .expect("terminal event")
    {
        JobOutcome::Failed { code, .. } => assert_eq!(code, ErrorCode::ShuttingDown),
        JobOutcome::Report(_) => panic!("draining server must refuse new jobs"),
    }

    // ping / stats / metrics keep working during the drain.
    admin.ping().expect("ping during drain");
    let text = admin.metrics().expect("metrics during drain");
    assert!(
        text.contains("questd_jobs_submitted"),
        "exposition missing counters: {text}"
    );

    // Queued and running jobs are NOT abandoned: both still report.
    assert!(matches!(
        blocker.wait_for("blocker", |_| {}).expect("blocker"),
        JobOutcome::Report(_)
    ));
    assert!(matches!(
        queued.wait_for("queued", |_| {}).expect("queued"),
        JobOutcome::Report(_)
    ));

    let report = server.drain(Duration::from_secs(60));
    assert!(report.completed, "drain must finish inside the deadline");
    assert!(report.seconds < 60.0);
}

/// Regression test for eager queue eviction: with the lone worker pinned
/// on a long job, an expired queued entry must be evicted by the periodic
/// sweep — while the worker is still busy — not lazily at the next
/// dequeue.
#[test]
fn expired_jobs_are_evicted_while_the_worker_is_still_pinned() {
    let server = start_server(1, 8, NetConfig::default());
    let addr = server.local_addr();

    let mut blocker = Client::connect(addr).expect("connect");
    blocker
        .submit(submit("blocker", QASM, fast_config(1)))
        .expect("submit blocker");
    wait_started(&mut blocker, "blocker");

    let mut victim = Client::connect(addr).expect("connect");
    victim
        .submit(SubmitRequest {
            queue_deadline_ms: Some(1),
            ..submit("victim", QASM_OTHER, fast_config(9))
        })
        .expect("submit victim");
    match victim.wait_for("victim", |_| {}).expect("terminal event") {
        JobOutcome::Failed { code, .. } => assert_eq!(code, ErrorCode::DeadlineExpired),
        JobOutcome::Report(_) => panic!("expired job must be evicted, not compiled"),
    }

    // The eviction arrived while the blocker was still compiling — under
    // the old dequeue-time-only eviction the terminal error could only
    // follow the blocker's completion.
    let stats = victim.stats().expect("stats");
    assert_eq!(stats.queue_evicted_deadline, 1);
    assert_eq!(
        stats.jobs_completed, 0,
        "eviction must not wait for the pinned worker to finish"
    );

    assert!(matches!(
        blocker.wait_for("blocker", |_| {}).expect("blocker"),
        JobOutcome::Report(_)
    ));
    server.shutdown();
}

/// An oversized request line is refused with `invalid_request` and the
/// connection closed without buffering the line — for both a complete
/// over-cap line and a partial line that exceeds the cap before its
/// newline ever arrives.
#[test]
fn oversized_request_lines_are_refused_and_the_connection_closed() {
    let server = start_server(
        1,
        4,
        NetConfig {
            max_line_bytes: 1024,
            ..NetConfig::default()
        },
    );
    let addr = server.local_addr();

    // Complete line over the cap.
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut w = stream.try_clone().expect("clone");
    let big = format!("{}\n", "x".repeat(4096));
    w.write_all(big.as_bytes()).expect("write oversized");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read");
    assert!(
        reply.contains(r#""code":"invalid_request""#),
        "reply: {reply}"
    );
    let mut rest = String::new();
    reader.read_line(&mut rest).expect("read to eof");
    assert!(rest.is_empty(), "connection must be closed, got: {rest}");

    // Partial line whose length passes the cap with no newline in sight:
    // refused as soon as the cap is crossed, not when (never) terminated.
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut w = stream.try_clone().expect("clone");
    w.write_all(&[b'y'; 4096]).expect("write partial");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read");
    assert!(
        reply.contains(r#""code":"invalid_request""#),
        "reply: {reply}"
    );

    let mut probe = Client::connect(addr).expect("connect");
    let stats = probe.stats().expect("stats");
    assert_eq!(stats.lines_oversized, 2);
    probe.ping().expect("daemon still serves");
    server.shutdown();
}

/// Garbage bytes mid-stream poison only their own line: the server answers
/// `parse_error` and the same connection keeps working for well-formed
/// requests afterwards.
#[test]
fn garbage_bytes_mid_stream_do_not_corrupt_the_connection() {
    let server = start_server(1, 4, NetConfig::default());
    let stream = TcpStream::connect(server.local_addr()).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut w = stream.try_clone().expect("clone");

    // Binary junk (invalid UTF-8 included), then a valid ping on the very
    // same connection.
    w.write_all(&[0x00, 0xFF, 0xFE, b'{', b'o', 0x80, b'\n'])
        .expect("write garbage");
    let mut reply = String::new();
    reader.read_line(&mut reply).expect("read");
    assert!(reply.contains(r#""code":"parse_error""#), "reply: {reply}");

    w.write_all(b"{\"v\":2,\"op\":\"ping\"}\n")
        .expect("write ping");
    reply.clear();
    reader.read_line(&mut reply).expect("read");
    assert!(reply.contains(r#""event":"pong""#), "reply: {reply}");
    server.shutdown();
}

/// A half-open peer that submits work but never reads its events cannot
/// pin a connection slot: once the server's outbound path stops making
/// progress for the write deadline, the connection is reaped and tallied,
/// while other connections stay fully functional.
#[test]
fn half_open_client_that_never_reads_is_reaped() {
    let server = start_server(
        1,
        4,
        NetConfig {
            write_deadline: Duration::from_millis(300),
            // Far above what loopback socket buffers can absorb silently,
            // so the reap fires on the write *deadline*, not this cap.
            max_outbound_bytes: 64 << 20,
            ..NetConfig::default()
        },
    );
    let addr = server.local_addr();

    // Pump enough pings that the replies (~28 MiB of pongs) overwhelm any
    // kernel socket buffering; the client never reads a byte back.
    let stream = TcpStream::connect(addr).expect("connect");
    let mut w = stream.try_clone().expect("clone");
    let chunk = b"{\"v\":2,\"op\":\"ping\"}\n".repeat(3276); // 64 KiB
    let mut reaped = false;
    for _ in 0..400 {
        if w.write_all(&chunk).is_err() {
            reaped = true; // server closed on us mid-stream
            break;
        }
    }
    if !reaped {
        // All input was absorbed before the reap; wait for the close to
        // surface as EOF/reset on the read side instead.
        let mut buf = [0u8; 4096];
        let mut r = stream.try_clone().expect("clone");
        r.set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        loop {
            match r.read(&mut buf) {
                Ok(0) | Err(_) => break,
                Ok(_) => {} // late-arriving pongs drain until the close
            }
        }
    }
    drop(stream);

    let mut probe = Client::connect(addr).expect("connect");
    probe.ping().expect("daemon still serves after the reap");
    let stats = probe.stats().expect("stats");
    assert_eq!(stats.conns_reaped, 1, "the half-open peer must be reaped");
    server.shutdown();
}

/// A real slow-loris peer — trickling a request line that never ends —
/// trips the read deadline and is reaped; an *idle* connection with no
/// partial line pending is never reaped.
#[test]
fn slow_loris_partial_line_trips_the_read_deadline() {
    let server = start_server(
        1,
        4,
        NetConfig {
            read_deadline: Duration::from_millis(300),
            ..NetConfig::default()
        },
    );
    let addr = server.local_addr();

    // Idle control connection: open the whole time, never reaped.
    let mut idle = Client::connect(addr).expect("connect");

    let stream = TcpStream::connect(addr).expect("connect");
    let mut w = stream.try_clone().expect("clone");
    w.write_all(b"{\"v\":2,\"op\":")
        .expect("write partial line");
    let mut r = stream.try_clone().expect("clone");
    r.set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    let mut buf = [0u8; 256];
    let n = r.read(&mut buf).unwrap_or(0);
    assert_eq!(n, 0, "reap must close the slow-loris connection");

    idle.ping().expect("idle connection survived");
    let stats = idle.stats().expect("stats");
    assert_eq!(stats.conns_reaped, 1, "only the slow loris was reaped");
    server.shutdown();
}

/// A connect storm against a pure-burst accept limiter: exactly the burst
/// is admitted, the rest are refused with a best-effort `rate_limited`
/// line (or a straight close), and the admitted connections work.
#[test]
fn connect_storm_is_clamped_by_the_accept_rate_limit() {
    let server = start_server(
        1,
        4,
        NetConfig {
            accept_rate: Some(RateLimit {
                burst: 3,
                per_second: 0.0,
            }),
            ..NetConfig::default()
        },
    );
    let addr = server.local_addr();

    let streams: Vec<TcpStream> = (0..8)
        .map(|_| TcpStream::connect(addr).expect("tcp connect"))
        .collect();
    let mut admitted = Vec::new();
    let mut refused = 0;
    for stream in streams {
        let mut w = stream.try_clone().expect("clone");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        stream
            .set_read_timeout(Some(Duration::from_secs(30)))
            .expect("timeout");
        // A refused connection may be closed before our ping even lands.
        let _ = w.write_all(b"{\"v\":2,\"op\":\"ping\"}\n");
        let mut reply = String::new();
        match reader.read_line(&mut reply) {
            Ok(n) if n > 0 && reply.contains(r#""event":"pong""#) => admitted.push(stream),
            Ok(_) => {
                // EOF or the best-effort rate_limited error line.
                assert!(
                    reply.is_empty() || reply.contains(r#""code":"rate_limited""#),
                    "unexpected refusal shape: {reply}"
                );
                refused += 1;
            }
            Err(_) => refused += 1, // reset mid-handshake also counts
        }
    }
    assert_eq!(admitted.len(), 3, "exactly the burst is admitted");
    assert_eq!(refused, 5);

    let mut probe = Client::from_stream(admitted.remove(0)).expect("reuse admitted conn");
    let stats = probe.stats().expect("stats");
    assert_eq!(stats.conns_accepted, 3);
    assert_eq!(stats.conns_rate_limited, 5);
    server.shutdown();
}

/// The per-connection submission limiter refuses over-burst submissions
/// with `rate_limited`, counts them, and leaves the connection healthy.
#[test]
fn submission_rate_limit_rejects_with_rate_limited() {
    let server = start_server(
        1,
        16,
        NetConfig {
            submit_rate: Some(RateLimit {
                burst: 2,
                per_second: 0.0,
            }),
            ..NetConfig::default()
        },
    );
    let addr = server.local_addr();

    let mut client = Client::connect(addr).expect("connect");
    client
        .submit(submit("a", QASM, fast_config(31)))
        .expect("submit a");
    client
        .submit(submit("b", QASM_OTHER, fast_config(32)))
        .expect("submit b");
    client
        .submit(submit("c", QASM, fast_config(33)))
        .expect("submit c");

    let outcomes = client
        .wait_for_all(&["a", "b", "c"], |_| {})
        .expect("terminals");
    let failed: Vec<_> = outcomes
        .iter()
        .filter_map(|(id, o)| match o {
            JobOutcome::Failed { code, .. } => Some((id.as_str(), *code)),
            JobOutcome::Report(_) => None,
        })
        .collect();
    assert_eq!(
        failed,
        vec![("c", ErrorCode::RateLimited)],
        "first two submissions fit the burst; the third is refused"
    );

    client.ping().expect("connection survives the refusal");
    let stats = client.stats().expect("stats");
    assert_eq!(stats.submits_rate_limited, 1);
    assert_eq!(stats.jobs_submitted, 2);
    server.shutdown();
}

/// `wait_for` must not lose another job's terminal event that arrives
/// while it waits: terminal events are buffered per job, so waiting in
/// the "wrong" order still yields both outcomes.
#[test]
fn out_of_order_wait_for_does_not_lose_terminal_events() {
    let server = start_server(2, 16, NetConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client
        .submit(submit("first", QASM, fast_config(41)))
        .expect("submit first");
    client
        .submit(submit("second", QASM_OTHER, fast_config(42)))
        .expect("submit second");

    // Wait for the jobs in reverse submission order; whichever finishes
    // first must still be retrievable afterwards.
    assert!(matches!(
        client.wait_for("second", |_| {}).expect("second"),
        JobOutcome::Report(_)
    ));
    assert!(matches!(
        client.wait_for("first", |_| {}).expect("first"),
        JobOutcome::Report(_)
    ));
    server.shutdown();
}

/// The `metrics` op returns a Prometheus exposition with every counter.
#[test]
fn metrics_op_returns_prometheus_exposition() {
    let server = start_server(1, 4, NetConfig::default());
    let mut client = Client::connect(server.local_addr()).expect("connect");
    client.ping().expect("ping");
    let text = client.metrics().expect("metrics");
    for name in [
        "questd_workers",
        "questd_queue_capacity",
        "questd_jobs_submitted",
        "questd_conns_accepted",
        "questd_lines_oversized",
    ] {
        assert!(text.contains(name), "exposition missing {name}:\n{text}");
    }
    assert!(
        text.contains("# TYPE questd_queue_depth gauge"),
        "gauges must be typed as gauges:\n{text}"
    );
    assert!(
        text.contains("# TYPE questd_jobs_completed counter"),
        "counters must be typed as counters:\n{text}"
    );
    server.shutdown();
}

/// The retrying client rides out transient `queue_full` backpressure with
/// jittered backoff and eventually lands the job — exactly once.
#[test]
fn retrying_client_rides_out_queue_full_backpressure() {
    let server = start_server(1, 1, NetConfig::default());
    let addr = server.local_addr();

    // Pin the worker and fill the single queue slot so the first retry
    // attempts are guaranteed to bounce with queue_full.
    let mut blocker = Client::connect(addr).expect("connect");
    blocker
        .submit(submit("blocker", QASM_OTHER, fast_config(1)))
        .expect("submit blocker");
    wait_started(&mut blocker, "blocker");
    let mut filler = Client::connect(addr).expect("connect");
    filler
        .submit(submit("filler", QASM, fast_config(2)))
        .expect("submit filler");
    match filler.recv().expect("accepted") {
        Event::Accepted { .. } => {}
        other => panic!("expected accepted, got {other:?}"),
    }

    let mut retrying = RetryingClient::new(
        addr.to_string(),
        RetryPolicy {
            max_attempts: 40,
            base_delay: Duration::from_millis(50),
            max_delay: Duration::from_millis(250),
            jitter_seed: 7,
        },
    );
    let outcome = retrying
        .submit_and_wait(&submit("retried", QASM, fast_config(55)))
        .expect("retry budget suffices");
    assert!(matches!(outcome, JobOutcome::Report(_)));

    assert!(matches!(
        blocker.wait_for("blocker", |_| {}).expect("blocker"),
        JobOutcome::Report(_)
    ));
    assert!(matches!(
        filler.wait_for("filler", |_| {}).expect("filler"),
        JobOutcome::Report(_)
    ));
    let stats = blocker.stats().expect("stats");
    assert!(
        stats.queue_rejected_full >= 1,
        "at least the first attempt must have bounced"
    );
    assert_eq!(
        stats.jobs_executed, 3,
        "the retried job ran exactly once despite resubmissions"
    );
    server.shutdown();
}
