//! Arithmetic benchmarks: Cuccaro adder, QFT, Draper-style multiplier.
//!
//! Multi-controlled operations are decomposed into the workspace gate set on
//! the fly: Toffoli via the standard 6-CNOT network, controlled-phase via
//! 2 CNOTs + 3 phase gates.

use qcircuit::Circuit;

/// Appends a Toffoli (CCX) on `(a, b, target)` using the standard 6-CNOT,
/// 7-T decomposition.
pub fn ccx(c: &mut Circuit, a: usize, b: usize, target: usize) {
    c.h(target);
    c.cnot(b, target);
    c.push(qcircuit::Gate::Tdg, &[target]);
    c.cnot(a, target);
    c.t(target);
    c.cnot(b, target);
    c.push(qcircuit::Gate::Tdg, &[target]);
    c.cnot(a, target);
    c.t(b);
    c.t(target);
    c.h(target);
    c.cnot(a, b);
    c.t(a);
    c.push(qcircuit::Gate::Tdg, &[b]);
    c.cnot(a, b);
}

/// Appends a controlled-phase `CP(θ)` on `(control, target)` decomposed as
/// `P(θ/2)·CX·P(−θ/2)·CX·P(θ/2)`.
pub fn cphase(c: &mut Circuit, theta: f64, control: usize, target: usize) {
    c.p(control, theta / 2.0);
    c.cnot(control, target);
    c.p(target, -theta / 2.0);
    c.cnot(control, target);
    c.p(target, theta / 2.0);
}

/// Appends a doubly-controlled phase `CCP(θ)` on `(a, b, target)` via the
/// standard square-root trick.
pub fn ccphase(c: &mut Circuit, theta: f64, a: usize, b: usize, target: usize) {
    cphase(c, theta / 2.0, a, target);
    c.cnot(a, b);
    cphase(c, -theta / 2.0, b, target);
    c.cnot(a, b);
    cphase(c, theta / 2.0, b, target);
}

/// Appends a quantum Fourier transform on the given qubits (first listed
/// qubit = most significant bit), including the final bit-reversal swaps, so
/// the subcircuit implements the exact DFT matrix on that subregister.
pub fn qft_on(c: &mut Circuit, qubits: &[usize]) {
    let n = qubits.len();
    for i in 0..n {
        c.h(qubits[i]);
        for j in (i + 1)..n {
            // Register widths are tiny; the bit-distance cast cannot truncate.
            #[allow(clippy::cast_possible_truncation)]
            let theta = std::f64::consts::PI / f64::powi(2.0, (j - i) as i32);
            cphase(c, theta, qubits[j], qubits[i]);
        }
    }
    for i in 0..n / 2 {
        c.swap(qubits[i], qubits[n - 1 - i]);
    }
}

/// The `n`-qubit quantum Fourier transform.
///
/// ```
/// let c = qbench::arith::qft(3);
/// assert_eq!(c.num_qubits(), 3);
/// assert!(c.cnot_count() > 0);
/// ```
pub fn qft(n: usize) -> Circuit {
    let mut c = Circuit::new(n);
    let qubits: Vec<usize> = (0..n).collect();
    qft_on(&mut c, &qubits);
    c
}

/// Register layout of the [`adder`] circuit.
///
/// Qubit 0 is the carry-in; bit `i` of operand B sits at `2i + 1`, bit `i`
/// of operand A at `2i + 2` (LSB first), and the last qubit is the
/// carry-out. After execution the B positions hold `A + B` and the carry-out
/// holds the final carry.
#[derive(Clone, Copy, Debug)]
pub struct AdderLayout {
    /// Operand bit-width.
    pub width: usize,
}

impl AdderLayout {
    /// Global qubit holding bit `i` (LSB = 0) of operand A.
    pub fn a(&self, i: usize) -> usize {
        2 * i + 2
    }
    /// Global qubit holding bit `i` of operand B (and of the sum).
    pub fn b(&self, i: usize) -> usize {
        2 * i + 1
    }
    /// Carry-in qubit.
    pub fn carry_in(&self) -> usize {
        0
    }
    /// Carry-out qubit.
    pub fn carry_out(&self) -> usize {
        2 * self.width + 1
    }
    /// Total register width.
    pub fn num_qubits(&self) -> usize {
        2 * self.width + 2
    }
}

/// The Cuccaro ripple-carry adder on two `width`-bit operands
/// (`2·width + 2` qubits total); computes `B ← A + B` in place.
///
/// This is the paper's Adder benchmark (its reference \[9\]).
pub fn adder(width: usize) -> Circuit {
    assert!(width >= 1, "adder needs at least 1-bit operands");
    let layout = AdderLayout { width };
    let mut c = Circuit::new(layout.num_qubits());
    let maj = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        c.cnot(z, y);
        c.cnot(z, x);
        ccx(c, x, y, z);
    };
    let uma = |c: &mut Circuit, x: usize, y: usize, z: usize| {
        ccx(c, x, y, z);
        c.cnot(z, x);
        c.cnot(x, y);
    };
    // Forward MAJ chain.
    maj(&mut c, layout.carry_in(), layout.b(0), layout.a(0));
    for i in 1..width {
        maj(&mut c, layout.a(i - 1), layout.b(i), layout.a(i));
    }
    // Copy the final carry.
    c.cnot(layout.a(width - 1), layout.carry_out());
    // Backward UMA chain.
    for i in (1..width).rev() {
        uma(&mut c, layout.a(i - 1), layout.b(i), layout.a(i));
    }
    uma(&mut c, layout.carry_in(), layout.b(0), layout.a(0));
    c
}

/// Register layout of the [`multiplier`] circuit.
///
/// Operand A occupies qubits `0..width` (MSB first), operand B
/// `width..2·width`, and the product register the remaining `2·width`
/// qubits (MSB first).
#[derive(Clone, Copy, Debug)]
pub struct MultiplierLayout {
    /// Operand bit-width.
    pub width: usize,
}

impl MultiplierLayout {
    /// Global qubit of operand-A bit with weight `2^i`.
    pub fn a(&self, i: usize) -> usize {
        self.width - 1 - i
    }
    /// Global qubit of operand-B bit with weight `2^i`.
    pub fn b(&self, i: usize) -> usize {
        2 * self.width - 1 - i
    }
    /// Global qubit of product bit with weight `2^i`.
    pub fn prod(&self, i: usize) -> usize {
        4 * self.width - 1 - i
    }
    /// Total register width.
    pub fn num_qubits(&self) -> usize {
        4 * self.width
    }
}

/// A QFT-based (Draper-style) multiplier on `width`-bit operands: computes
/// `P ← A·B` into an initially-zero `2·width`-bit product register.
///
/// Stands in for the paper's Multiplier benchmark (its reference \[14\]):
/// partial products `a_i·b_j·2^{i+j}` are accumulated as doubly-controlled
/// phase rotations in the Fourier space of the product register.
pub fn multiplier(width: usize) -> Circuit {
    assert!(width >= 1, "multiplier needs at least 1-bit operands");
    let layout = MultiplierLayout { width };
    let mut c = Circuit::new(layout.num_qubits());
    let prod_bits = 2 * width;
    // Operand widths are tiny; bit-count casts to i32 cannot truncate.
    #[allow(clippy::cast_possible_truncation)]
    let modulus = f64::powi(2.0, prod_bits as i32);
    let prod_qubits: Vec<usize> = (0..prod_bits).map(|m| 4 * width - prod_bits + m).collect();
    qft_on(&mut c, &prod_qubits);
    for i in 0..width {
        for j in 0..width {
            for k in 0..prod_bits {
                // Adding 2^{i+j} in Fourier space rotates the product bit of
                // weight 2^k by 2π·2^{i+j+k}/2^{2w}.
                let exponent = i + j + k;
                if exponent >= prod_bits {
                    continue; // full turns are identity
                }
                #[allow(clippy::cast_possible_truncation)] // exponent < prod_bits ≪ i32::MAX
                let theta = 2.0 * std::f64::consts::PI * f64::powi(2.0, exponent as i32) / modulus;
                ccphase(&mut c, theta, layout.a(i), layout.b(j), layout.prod(k));
            }
        }
    }
    // Inverse QFT on the product register.
    let mut iqft = Circuit::new(layout.num_qubits());
    qft_on(&mut iqft, &prod_qubits);
    c.extend_from(&iqft.inverse());
    c
}

#[cfg(test)]
mod tests {
    use super::*;
    use qmath::{Matrix, C64};
    use qsim::Statevector;

    /// Runs `c` on basis input `x` and asserts a deterministic output `y`.
    fn assert_maps(c: &Circuit, x: usize, y: usize) {
        let mut sv = Statevector::basis_state(c.num_qubits(), x);
        sv.apply_circuit(c);
        let probs = sv.probabilities();
        assert!(
            probs[y] > 0.999,
            "expected |{y:0w$b}⟩, got distribution peak {} (p[{y}]={})",
            probs
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
                .unwrap()
                .0,
            probs[y],
            w = c.num_qubits()
        );
    }

    #[test]
    fn ccx_matches_toffoli_truth_table() {
        let mut c = Circuit::new(3);
        ccx(&mut c, 0, 1, 2);
        let u = qsim::unitary_of(&c);
        // |110⟩ (6) → |111⟩ (7) and vice versa; others fixed.
        for x in 0..8 {
            let expect = if x >= 6 { x ^ 1 } else { x };
            assert!(
                u[(expect, x)].abs() > 0.999,
                "CCX wrong on input {x}: {:?}",
                u
            );
        }
    }

    #[test]
    fn cphase_matrix_is_diag() {
        let mut c = Circuit::new(2);
        cphase(&mut c, 0.7, 0, 1);
        let u = qsim::unitary_of(&c);
        let expect = Matrix::diagonal(&[C64::ONE, C64::ONE, C64::ONE, C64::cis(0.7)]);
        assert!(u.approx_eq(&expect, 1e-9));
    }

    #[test]
    fn ccphase_only_phases_all_ones() {
        let mut c = Circuit::new(3);
        ccphase(&mut c, 1.1, 0, 1, 2);
        let u = qsim::unitary_of(&c);
        for x in 0..8 {
            let expect = if x == 7 { C64::cis(1.1) } else { C64::ONE };
            assert!(u[(x, x)].approx_eq(expect, 1e-9), "x={x}");
        }
    }

    #[test]
    fn qft_matches_dft_matrix() {
        let n = 3;
        let dim = 1 << n;
        let u = qsim::unitary_of(&qft(n));
        let scale = 1.0 / (dim as f64).sqrt();
        let dft = Matrix::from_fn(dim, dim, |r, c| {
            C64::cis(2.0 * std::f64::consts::PI * (r * c) as f64 / dim as f64) * scale
        });
        assert!(u.approx_eq_phase(&dft, 1e-8), "QFT != DFT");
    }

    #[test]
    fn adder_one_bit_truth_table() {
        let c = adder(1);
        let layout = AdderLayout { width: 1 };
        let n = c.num_qubits();
        // Enumerate (cin, a, b) and check sum/carry.
        for cin in 0..2usize {
            for a in 0..2usize {
                for b in 0..2usize {
                    let mut x = 0usize;
                    if cin == 1 {
                        x |= 1 << (n - 1 - layout.carry_in());
                    }
                    if a == 1 {
                        x |= 1 << (n - 1 - layout.a(0));
                    }
                    if b == 1 {
                        x |= 1 << (n - 1 - layout.b(0));
                    }
                    let total = cin + a + b;
                    let mut y = 0usize;
                    if a == 1 {
                        y |= 1 << (n - 1 - layout.a(0)); // A preserved
                    }
                    if cin == 1 {
                        y |= 1 << (n - 1 - layout.carry_in()); // cin restored
                    }
                    if total & 1 == 1 {
                        y |= 1 << (n - 1 - layout.b(0)); // sum bit
                    }
                    if total >= 2 {
                        y |= 1 << (n - 1 - layout.carry_out());
                    }
                    assert_maps(&c, x, y);
                }
            }
        }
    }

    #[test]
    fn adder_two_bit_addition() {
        let c = adder(2);
        let layout = AdderLayout { width: 2 };
        let n = c.num_qubits();
        for a_val in 0..4usize {
            for b_val in 0..4usize {
                let mut x = 0usize;
                for i in 0..2 {
                    if (a_val >> i) & 1 == 1 {
                        x |= 1 << (n - 1 - layout.a(i));
                    }
                    if (b_val >> i) & 1 == 1 {
                        x |= 1 << (n - 1 - layout.b(i));
                    }
                }
                let sum = a_val + b_val;
                let mut y = 0usize;
                for i in 0..2 {
                    if (a_val >> i) & 1 == 1 {
                        y |= 1 << (n - 1 - layout.a(i));
                    }
                    if (sum >> i) & 1 == 1 {
                        y |= 1 << (n - 1 - layout.b(i));
                    }
                }
                if sum >= 4 {
                    y |= 1 << (n - 1 - layout.carry_out());
                }
                assert_maps(&c, x, y);
            }
        }
    }

    #[test]
    fn multiplier_two_bit_products() {
        let c = multiplier(2);
        let layout = MultiplierLayout { width: 2 };
        let n = c.num_qubits();
        for a_val in 0..4usize {
            for b_val in 0..4usize {
                let mut x = 0usize;
                for i in 0..2 {
                    if (a_val >> i) & 1 == 1 {
                        x |= 1 << (n - 1 - layout.a(i));
                    }
                    if (b_val >> i) & 1 == 1 {
                        x |= 1 << (n - 1 - layout.b(i));
                    }
                }
                let prod = a_val * b_val;
                let mut y = x;
                for k in 0..4 {
                    if (prod >> k) & 1 == 1 {
                        y |= 1 << (n - 1 - layout.prod(k));
                    }
                }
                assert_maps(&c, x, y);
            }
        }
    }

    #[test]
    fn qft_is_reversible() {
        let c = qft(4);
        let u = qsim::unitary_of(&c);
        assert!(u.is_unitary(1e-8));
        let inv = qsim::unitary_of(&c.inverse());
        assert!(u.matmul(&inv).approx_eq(&Matrix::identity(16), 1e-7));
    }
}
