//! A minimal, ordered JSON value model with emitter and parser.
//!
//! Exists because the workspace builds offline (no serde): the structured
//! outputs — `RunReport`, `BENCH_*.json`, the `--trace=json` log — need a
//! JSON representation that round-trips exactly. Objects preserve insertion
//! order so emitted reports are deterministic and diffable; numbers are
//! emitted with Rust's shortest-roundtrip float formatting, so
//! `parse(emit(x)) == x` for every finite value.
//!
//! ```
//! use qobs::json::Json;
//!
//! let report = Json::Object(vec![
//!     ("cnots".into(), Json::from(42u64)),
//!     ("distance".into(), Json::from(0.125)),
//! ]);
//! let text = report.pretty();
//! let back = Json::parse(&text).unwrap();
//! assert_eq!(back, report);
//! assert_eq!(back.get("cnots").and_then(Json::as_u64), Some(42));
//! ```

use std::fmt;

/// A JSON value. Object keys keep insertion order (deterministic output).
#[derive(Clone, Debug, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number; non-finite floats are emitted as `null` (JSON has no NaN).
    Number(f64),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Json>),
    /// An object with ordered keys.
    Object(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on objects; `None` on other variants or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Object(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Number(v) => Some(*v),
            _ => None,
        }
    }

    /// The numeric payload as an unsigned integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
            Json::Number(v) if *v >= 0.0 && v.fract() == 0.0 && *v <= 2f64.powi(53) => {
                Some(*v as u64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a bool.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Json::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&[Json]> {
        match self {
            Json::Array(items) => Some(items),
            _ => None,
        }
    }

    /// The member list, if this is an object.
    pub fn as_object(&self) -> Option<&[(String, Json)]> {
        match self {
            Json::Object(members) => Some(members),
            _ => None,
        }
    }

    /// Compact single-line rendering.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Pretty rendering with two-space indentation and a trailing newline —
    /// the format of the committed `RunReport` / `BENCH_*.json` files.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, level: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * level), " ".repeat(w * (level + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Number(v) => {
                if v.is_finite() {
                    // Shortest roundtrip formatting; force a decimal form
                    // (Rust never emits exponents for `{}` on f64).
                    out.push_str(&format!("{v}"));
                } else {
                    out.push_str("null");
                }
            }
            Json::String(s) => write_escaped(out, s),
            Json::Array(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Object(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, level + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }

    /// Parses a JSON document (the full input must be one value plus
    /// whitespace).
    ///
    /// # Errors
    ///
    /// Returns a byte-offset–tagged message on malformed input.
    pub fn parse(text: &str) -> Result<Json, ParseError> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            pos: 0,
        };
        p.skip_ws();
        let value = p.value()?;
        p.skip_ws();
        if p.pos != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(value)
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.compact())
    }
}

macro_rules! json_from_num {
    ($($ty:ty),+) => {
        $(impl From<$ty> for Json {
            fn from(v: $ty) -> Json {
                #[allow(clippy::cast_precision_loss)]
                Json::Number(v as f64)
            }
        })+
    };
}

json_from_num!(u8, u16, u32, u64, usize, i8, i16, i32, i64, f32, f64);

impl From<bool> for Json {
    fn from(v: bool) -> Json {
        Json::Bool(v)
    }
}

impl From<&str> for Json {
    fn from(v: &str) -> Json {
        Json::String(v.to_string())
    }
}

impl From<String> for Json {
    fn from(v: String) -> Json {
        Json::String(v)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Array(v.into_iter().map(Into::into).collect())
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parse failure with the byte offset where it was detected.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "json parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for ParseError {}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn err(&self, message: &str) -> ParseError {
        ParseError {
            offset: self.pos,
            message: message.to_string(),
        }
    }

    fn skip_ws(&mut self) {
        while self
            .bytes
            .get(self.pos)
            .is_some_and(|b| matches!(b, b' ' | b'\t' | b'\n' | b'\r'))
        {
            self.pos += 1;
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), ParseError> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected '{word}'")))
        }
    }

    fn value(&mut self) -> Result<Json, ParseError> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => Ok(Json::String(self.string()?)),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn array(&mut self) -> Result<Json, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Json::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Json::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, ParseError> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Json::Object(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Json::Object(members));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            // Fast path: run of plain bytes.
            while self
                .peek()
                .is_some_and(|b| b != b'"' && b != b'\\' && b >= 0x20)
            {
                self.pos += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("unfinished escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .and_then(|h| std::str::from_utf8(h).ok())
                                .ok_or_else(|| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed by our own
                            // emitter; map lone surrogates to U+FFFD.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                _ => return Err(self.err("unterminated string")),
            }
        }
    }

    fn number(&mut self) -> Result<Json, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while self
            .peek()
            .is_some_and(|b| b.is_ascii_digit() || matches!(b, b'.' | b'e' | b'E' | b'+' | b'-'))
        {
            self.pos += 1;
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        text.parse::<f64>()
            .map(Json::Number)
            .map_err(|_| self.err("malformed number"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrips_nested_document() {
        let doc = Json::Object(vec![
            ("name".into(), Json::from("quest")),
            ("ok".into(), Json::from(true)),
            ("nothing".into(), Json::Null),
            (
                "values".into(),
                Json::from(vec![Json::from(1u64), Json::from(0.25), Json::from(-3i64)]),
            ),
            (
                "nested".into(),
                Json::Object(vec![("k".into(), Json::from("v\"\n\\"))]),
            ),
            ("empty_arr".into(), Json::Array(vec![])),
            ("empty_obj".into(), Json::Object(vec![])),
        ]);
        for text in [doc.compact(), doc.pretty()] {
            assert_eq!(Json::parse(&text).unwrap(), doc, "input: {text}");
        }
    }

    #[test]
    fn float_formatting_roundtrips_exactly() {
        for v in [0.1, 1e-12, 123456.789012345, f64::MAX, 5e-324] {
            let text = Json::Number(v).compact();
            let back = Json::parse(&text).unwrap().as_f64().unwrap();
            assert_eq!(back.to_bits(), v.to_bits(), "value {v}");
        }
    }

    #[test]
    fn non_finite_numbers_emit_null() {
        assert_eq!(Json::Number(f64::NAN).compact(), "null");
        assert_eq!(Json::Number(f64::INFINITY).compact(), "null");
    }

    #[test]
    fn parses_escapes_and_unicode() {
        let v = Json::parse(r#""aA\n\t\" b""#).unwrap();
        assert_eq!(v.as_str(), Some("aA\n\t\" b"));
    }

    #[test]
    fn rejects_malformed_input() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated"] {
            assert!(Json::parse(bad).is_err(), "should reject: {bad}");
        }
    }

    #[test]
    fn as_u64_is_exact_only() {
        assert_eq!(Json::Number(7.0).as_u64(), Some(7));
        assert_eq!(Json::Number(7.5).as_u64(), None);
        assert_eq!(Json::Number(-1.0).as_u64(), None);
    }
}
