//! Model checks of the bounded work-queue / `OnceLock` publication handoff
//! that `qsynth::optimize::minimize_with_width` and the LEAP frontier
//! expansion share: workers claim job indices from an atomic counter and
//! publish results into per-job cells; a placement-ordered walk of the
//! cells then reduces deterministically.
//!
//! The models are written against the `loom` API (`loom::model`,
//! `loom::thread`, `loom::sync`), so they run unmodified under the real
//! loom checker when it is available; in this offline container the `loom`
//! shim (shims/loom) executes them as bounded stress iteration with
//! deterministic schedule perturbation. The checked properties are
//! schedule-independent either way:
//!
//! 1. every job is claimed by exactly one worker and its cell set exactly
//!    once (no lost or duplicated work),
//! 2. the reduction over cells is independent of worker count and
//!    completion order,
//! 3. a worker dying mid-job loses only its own claimed job — survivors
//!    drain the queue and the hole is detectable (the degradation path
//!    added to `minimize_with_width`).

use loom::sync::atomic::{AtomicUsize, Ordering};
use loom::sync::{Arc, OnceLock};

const JOBS: usize = 7;

/// Spawns `width` workers draining the queue; worker `dying` (if any)
/// returns right after claiming its first job without publishing. Returns
/// the cells after all workers joined.
fn run_pool(width: usize, dying: Option<usize>) -> Vec<Option<usize>> {
    let cells: Arc<Vec<OnceLock<usize>>> = Arc::new((0..JOBS).map(|_| OnceLock::new()).collect());
    let next = Arc::new(AtomicUsize::new(0));
    let handles: Vec<_> = (0..width)
        .map(|w| {
            let cells = Arc::clone(&cells);
            let next = Arc::clone(&next);
            loom::thread::spawn(move || loop {
                let j = next.fetch_add(1, Ordering::Relaxed);
                if j >= JOBS {
                    break;
                }
                if dying == Some(w) {
                    // Model a worker panic: the claimed job is never
                    // published. (A real panic would also unwind, but the
                    // observable effect on the cells is identical.)
                    break;
                }
                // Deterministic per-job result, independent of the worker.
                let fresh = cells[j].set(j * j + 1).is_ok();
                assert!(fresh, "job {j} claimed twice");
            })
        })
        .collect();
    for h in handles {
        h.join().expect("model worker joins");
    }
    cells.iter().map(|c| c.get().copied()).collect()
}

#[test]
fn every_job_set_exactly_once_at_any_width() {
    loom::model(|| {
        for width in [1, 2, 3] {
            let got = run_pool(width, None);
            for (j, slot) in got.iter().enumerate() {
                assert_eq!(*slot, Some(j * j + 1), "job {j} at width {width}");
            }
        }
    });
}

#[test]
fn reduction_is_width_invariant() {
    loom::model(|| {
        let serial: Vec<Option<usize>> = run_pool(1, None);
        for width in [2, 4] {
            assert_eq!(run_pool(width, None), serial, "width {width}");
        }
    });
}

#[test]
fn dying_worker_loses_only_its_claimed_job() {
    loom::model(|| {
        let got = run_pool(3, Some(1));
        let holes = got.iter().filter(|s| s.is_none()).count();
        assert!(
            holes <= 1,
            "a dying worker loses at most its one claimed job"
        );
        for (j, slot) in got.iter().enumerate() {
            if let Some(v) = slot {
                assert_eq!(*v, j * j + 1, "published cells are uncorrupted");
            }
        }
    });
}
