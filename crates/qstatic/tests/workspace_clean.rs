//! The acceptance gate: the real workspace, analyzed with the committed
//! `qstatic.toml`, is clean under `--deny-all` semantics. Because this runs
//! on every `cargo test`, a regression against any invariant (or a stale /
//! reason-free allowlist entry) fails tier-1 CI, not just the dedicated
//! static-analysis job.

use std::path::PathBuf;

fn repo_root() -> PathBuf {
    // crates/qstatic -> crates -> repo root
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(std::path::Path::parent)
        .expect("crates/qstatic has a grandparent")
        .to_path_buf()
}

#[test]
fn workspace_is_clean_under_deny_all() {
    let root = repo_root();
    let allow = qstatic::load_allowlist(&root.join("qstatic.toml")).expect("qstatic.toml parses");
    let report = qstatic::analyze_workspace(&root, &allow).expect("workspace analyzable");

    assert!(
        report.files_scanned > 50,
        "suspiciously few files scanned ({}): wrong root?",
        report.files_scanned
    );
    let rendered: Vec<String> = report.findings.iter().map(ToString::to_string).collect();
    assert!(
        report.findings.is_empty(),
        "workspace has unallowed lint findings:\n{}",
        rendered.join("\n")
    );
    // --deny-all semantics: hygiene warnings (reason-free or stale
    // allowlist entries) are failures too.
    assert!(
        report.warnings.is_empty(),
        "allowlist hygiene warnings:\n{}",
        report.warnings.join("\n")
    );
}

#[test]
fn every_allowlist_entry_is_exercised_and_justified() {
    let root = repo_root();
    let allow = qstatic::load_allowlist(&root.join("qstatic.toml")).expect("qstatic.toml parses");
    assert!(
        !allow.entries.is_empty(),
        "the workspace has registered deadline/telemetry sites; an empty \
         allowlist means the wrong file was loaded"
    );
    let report = qstatic::analyze_workspace(&root, &allow).expect("workspace analyzable");
    for (idx, entry) in allow.entries.iter().enumerate() {
        assert!(
            entry
                .reason
                .as_deref()
                .is_some_and(|r| !r.trim().is_empty()),
            "entry {} ({} at {}) has no reason",
            idx,
            entry.lint,
            entry.path
        );
        assert!(
            report.suppressed.iter().any(|(_, used)| *used == idx),
            "entry {} ({} at {}) suppresses nothing — remove it",
            idx,
            entry.lint,
            entry.path
        );
    }
}
