//! Property tests: valid IR is lint-clean, and each seeded mutation class
//! triggers its specific lint.

use proptest::prelude::*;
use qcircuit::topology::CouplingMap;
use qcircuit::{Circuit, Gate};
use qlint::{lint, LintContext, PartitionView, RoutingView};
use qpartition::scan_partition;

fn random_circuit_strategy(n: usize, max_len: usize) -> impl Strategy<Value = Circuit> {
    let gate = prop_oneof![
        Just(Gate::H),
        Just(Gate::X),
        Just(Gate::T),
        (-3.2..3.2f64).prop_map(Gate::Rz),
        (-3.2..3.2f64).prop_map(Gate::Ry),
        Just(Gate::Cnot),
        Just(Gate::Cz),
        Just(Gate::Swap),
    ];
    prop::collection::vec((gate, 0..n, 1..n), 1..max_len).prop_map(move |gates| {
        let mut c = Circuit::new(n);
        // Touch every qubit so the dangling-qubit lint is vacuous and the
        // "valid circuit ⇒ no findings" property is exact.
        for q in 0..n {
            c.h(q);
        }
        for (g, a, off) in gates {
            if g.num_qubits() == 1 {
                c.push(g, &[a]);
            } else {
                c.push(g, &[a, (a + off) % n]);
            }
        }
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn valid_circuits_produce_no_findings(c in random_circuit_strategy(5, 24)) {
        let findings = lint(&LintContext::for_circuit(&c));
        prop_assert!(findings.is_empty(), "unexpected findings: {findings:?}");
    }

    #[test]
    fn valid_partitions_produce_no_findings(
        c in random_circuit_strategy(5, 20),
        k in 2..5usize,
    ) {
        let parts = scan_partition(&c, k);
        let ctx = LintContext::for_circuit(&c)
            .with_partition(PartitionView::from_partition(&parts, k));
        let findings = lint(&ctx);
        prop_assert!(findings.is_empty(), "unexpected findings: {findings:?}");
    }

    #[test]
    fn out_of_range_qubit_triggers_qubit_bounds(
        c in random_circuit_strategy(5, 20),
        pick in 0..10_000usize,
    ) {
        let mut insts = c.instructions().to_vec();
        let i = pick % insts.len();
        insts[i].qubits[0] = c.num_qubits() + pick % 7;
        let findings = lint(&LintContext::from_raw(c.num_qubits(), &insts));
        prop_assert!(
            findings.iter().any(|f| f.lint == "qubit-bounds"),
            "mutation at {i} not caught: {findings:?}"
        );
    }

    #[test]
    fn dropped_partition_gate_triggers_partition_soundness(
        c in random_circuit_strategy(5, 20),
        pick in 0..10_000usize,
    ) {
        let parts = scan_partition(&c, 3);
        let mut view = PartitionView::from_partition(&parts, 3);
        let bi = pick % view.blocks.len();
        let len = view.blocks[bi].instructions.len();
        view.blocks[bi].instructions.remove(pick % len);
        let ctx = LintContext::for_circuit(&c).with_partition(view);
        let findings = lint(&ctx);
        prop_assert!(
            findings.iter().any(|f| f.lint == "partition-soundness"),
            "dropped gate in block {bi} not caught: {findings:?}"
        );
    }

    #[test]
    fn swapped_cnot_direction_post_routing_triggers_topology(
        c in random_circuit_strategy(4, 16),
        pick in 0..10_000usize,
    ) {
        let map = CouplingMap::line(4);
        let routed = qtranspile::routing::route(&c, &map);
        let cnots: Vec<usize> = routed
            .circuit
            .iter()
            .enumerate()
            .filter(|(_, i)| i.gate == Gate::Cnot)
            .map(|(i, _)| i)
            .collect();
        prop_assume!(!cnots.is_empty());
        let mut broken = routed.circuit.instructions().to_vec();
        broken[cnots[pick % cnots.len()]].qubits.reverse();
        let ctx = LintContext::from_raw(4, &broken)
            .with_coupling(&map)
            .with_routing(RoutingView::new(&c, routed.final_layout.clone()));
        let findings = lint(&ctx);
        prop_assert!(
            findings.iter().any(|f| f.lint == "topology"),
            "reversed CNOT not caught: {findings:?}"
        );
    }
}
