//! Canonical state-preparation and oracle benchmarks: GHZ, W,
//! Bernstein–Vazirani, Grover.
//!
//! These complement the Table-1 suite with circuits whose ideal outputs are
//! known in closed form, which makes them sharp end-to-end probes for the
//! simulators and for QUEST's output-distance guarantees.

use crate::arith::ccx;
use qcircuit::Circuit;

/// The `n`-qubit GHZ state preparation `(|0…0⟩ + |1…1⟩)/√2`.
pub fn ghz(n: usize) -> Circuit {
    assert!(n >= 2, "GHZ needs at least 2 qubits");
    let mut c = Circuit::new(n);
    c.h(0);
    for q in 0..n - 1 {
        c.cnot(q, q + 1);
    }
    c
}

/// Appends a controlled-`Ry(θ)` on `(control, target)` via the standard
/// two-CNOT decomposition.
pub fn cry(c: &mut Circuit, theta: f64, control: usize, target: usize) {
    c.ry(target, theta / 2.0);
    c.cnot(control, target);
    c.ry(target, -theta / 2.0);
    c.cnot(control, target);
}

/// The `n`-qubit W state `(|10…0⟩ + |01…0⟩ + … + |0…01⟩)/√n` via the
/// cascade of controlled rotations.
pub fn w_state(n: usize) -> Circuit {
    assert!(n >= 2, "W state needs at least 2 qubits");
    let mut c = Circuit::new(n);
    c.x(0);
    for i in 0..n - 1 {
        let remaining = (n - i) as f64;
        let theta = 2.0 * (1.0 / remaining.sqrt()).acos();
        cry(&mut c, theta, i, i + 1);
        c.cnot(i + 1, i);
    }
    c
}

/// Bernstein–Vazirani circuit recovering an `n`-bit secret in one query:
/// `n` data qubits plus one ancilla (the last qubit). Measuring the data
/// qubits yields `secret` deterministically.
///
/// # Panics
///
/// Panics if the secret does not fit in `n` bits.
pub fn bernstein_vazirani(n: usize, secret: usize) -> Circuit {
    assert!(secret < (1 << n), "secret does not fit in {n} bits");
    let ancilla = n;
    let mut c = Circuit::new(n + 1);
    // Ancilla to |−⟩.
    c.x(ancilla).h(ancilla);
    for q in 0..n {
        c.h(q);
    }
    // Oracle: f(x) = secret·x (bit q of the secret uses data qubit q, with
    // qubit 0 holding the most significant bit).
    for q in 0..n {
        if (secret >> (n - 1 - q)) & 1 == 1 {
            c.cnot(q, ancilla);
        }
    }
    for q in 0..n {
        c.h(q);
    }
    c
}

/// Grover search on 2 or 3 qubits for a single marked basis state, with the
/// textbook optimal number of iterations (1 for n=2, 2 for n=3).
///
/// # Panics
///
/// Panics unless `n ∈ {2, 3}` and `marked < 2^n`.
pub fn grover(n: usize, marked: usize) -> Circuit {
    assert!(n == 2 || n == 3, "grover implemented for 2 and 3 qubits");
    assert!(marked < (1 << n), "marked state out of range");
    let iterations = if n == 2 { 1 } else { 2 };
    let mut c = Circuit::new(n);
    for q in 0..n {
        c.h(q);
    }
    for _ in 0..iterations {
        phase_flip_on(&mut c, n, marked);
        // Diffusion: H X … flip-on-zero … X H.
        for q in 0..n {
            c.h(q);
        }
        phase_flip_on(&mut c, n, 0);
        for q in 0..n {
            c.h(q);
        }
    }
    c
}

/// Appends a phase flip of the single basis state `state` (a multi-
/// controlled Z conjugated by X on the zero bits).
fn phase_flip_on(c: &mut Circuit, n: usize, state: usize) {
    let flip: Vec<usize> = (0..n)
        .filter(|&q| (state >> (n - 1 - q)) & 1 == 0)
        .collect();
    for &q in &flip {
        c.x(q);
    }
    match n {
        2 => {
            c.cz(0, 1);
        }
        3 => {
            // CCZ = H(target)·CCX·H(target).
            c.h(2);
            ccx(c, 0, 1, 2);
            c.h(2);
        }
        _ => unreachable!("guarded by grover()"),
    }
    for &q in &flip {
        c.x(q);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qsim::Statevector;

    #[test]
    fn ghz_amplitudes() {
        for n in [2, 4, 6] {
            let probs = Statevector::run(&ghz(n)).probabilities();
            assert!((probs[0] - 0.5).abs() < 1e-12);
            assert!((probs[(1 << n) - 1] - 0.5).abs() < 1e-12);
        }
    }

    #[test]
    fn w_state_is_uniform_over_weight_one() {
        for n in [2usize, 3, 5] {
            let probs = Statevector::run(&w_state(n)).probabilities();
            for (k, &p) in probs.iter().enumerate() {
                if k.count_ones() == 1 {
                    assert!((p - 1.0 / n as f64).abs() < 1e-9, "n={n}, state {k}: p={p}");
                } else {
                    assert!(
                        p < 1e-9,
                        "n={n}: weight-{} state has mass {p}",
                        k.count_ones()
                    );
                }
            }
        }
    }

    #[test]
    fn bernstein_vazirani_recovers_secret() {
        for secret in [0b101usize, 0b011, 0b000, 0b111] {
            let c = bernstein_vazirani(3, secret);
            let probs = Statevector::run(&c).probabilities();
            // Data qubits (0..3) must read `secret`; ancilla is |−⟩ so the
            // two ancilla outcomes split the mass evenly.
            let idx0 = secret << 1;
            let idx1 = (secret << 1) | 1;
            assert!(
                (probs[idx0] + probs[idx1] - 1.0).abs() < 1e-9,
                "secret {secret:03b}: p={}",
                probs[idx0] + probs[idx1]
            );
        }
    }

    #[test]
    fn grover_amplifies_marked_state() {
        // n=2, one iteration: exact.
        for marked in 0..4 {
            let probs = Statevector::run(&grover(2, marked)).probabilities();
            assert!(
                probs[marked] > 0.99,
                "n=2 marked {marked}: p={}",
                probs[marked]
            );
        }
        // n=3, two iterations: ~94.5%.
        for marked in [0usize, 5, 7] {
            let probs = Statevector::run(&grover(3, marked)).probabilities();
            assert!(
                probs[marked] > 0.9,
                "n=3 marked {marked}: p={}",
                probs[marked]
            );
        }
    }

    #[test]
    fn generators_are_normalized() {
        for c in [ghz(3), w_state(4), bernstein_vazirani(3, 5), grover(3, 2)] {
            assert!((Statevector::run(&c).norm() - 1.0).abs() < 1e-10);
        }
    }
}
