OPENQASM 2.0;
include "qelib1.inc";
// Seeded bug: q[3] does not exist in a 2-qubit register.
qreg q[2];
h q[0];
cx q[0],q[3];
