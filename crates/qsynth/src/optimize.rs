//! Gradient-based angle optimization (Adam with random restarts).
//!
//! The synthesis cost landscape is non-convex; LEAP-family compilers handle
//! this with multi-start local optimization. Adam is robust here because the
//! cost and gradient are cheap and smooth; restarts draw fresh angles
//! uniformly from `[−π, π]`.
//!
//! Starts are independent, so [`minimize`] runs them on a bounded worker
//! pool (the PR-2 fan-out pattern) while staying **deterministic**: each
//! start's initial point comes from fast-forwarding a single seeded RNG
//! stream to that start's position (so start `s` sees exactly the draws the
//! serial loop would have given it), and the reduction picks the best
//! `(cost, start_index)` pair — bit-identical to the serial sweep for any
//! worker count. See DESIGN.md § "Synthesis hot path".
//!
//! [`minimize_batched`] is the faster sibling used by the synthesis hot
//! loop: instead of one thread per start it packs all live starts into the
//! **lanes** of one structure-of-arrays [`BatchEvaluator`], so a single
//! template traversal produces every start's cost and gradient. Each lane
//! carries its own Adam state; lanes retire independently when their start
//! converges, early-stops, or exhausts its iteration budget, and freed
//! lanes are refilled from the start queue. Because batched cost/gradient
//! kernels are bit-identical per lane at any width, the per-start outcomes
//! — and therefore the reduction — are bit-identical to the serial sweep
//! for any batch width. See DESIGN.md § "Batched multi-start evaluation".

use qmath::kernels::MAX_BATCH;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Configuration for [`minimize`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OptimizerConfig {
    /// Maximum Adam iterations per start.
    pub max_iters: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Number of starts (the first uses the warm-start point when given).
    pub restarts: usize,
    /// Early-stop threshold on the cost value.
    pub target_cost: f64,
    /// RNG seed for restart initialization.
    pub seed: u64,
    /// Run independent starts on a bounded worker pool. The result is
    /// bit-identical either way; this only trades wall-clock for threads.
    pub parallel: bool,
    /// Maximum SoA lanes per batched evaluation in [`minimize_batched`]
    /// (clamped to [`qmath::kernels::MAX_BATCH`] and to the start count).
    /// Width only trades throughput: per-start results are bit-identical
    /// at any batch width. Ignored by the scalar [`minimize`] path.
    pub batch_width: usize,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            max_iters: 400,
            learning_rate: 0.05,
            restarts: 2,
            target_cost: 1e-14,
            seed: 0,
            parallel: true,
            batch_width: MAX_BATCH,
        }
    }
}

/// Result of an optimization run.
#[derive(Clone, Debug)]
pub struct OptimizeOutcome {
    /// Best parameters found.
    pub params: Vec<f64>,
    /// Cost at those parameters.
    pub cost: f64,
    /// Total gradient evaluations spent.
    pub evals: usize,
    /// Start attempts aborted on a non-finite cost/gradient or a panic.
    /// Each aborted attempt was retried from a salted seed (up to
    /// [`MAX_POISON_RETRIES`] times); zero on a clean run.
    pub poisoned_starts: usize,
}

/// How many times a poisoned (non-finite or panicked) start is redrawn
/// from a fresh salted seed before it is written off as unusable.
pub const MAX_POISON_RETRIES: usize = 2;

/// A reusable cost-and-gradient evaluator.
///
/// `eval` writes the gradient into a caller-provided buffer and returns the
/// cost, so a stateful implementation (e.g. [`crate::cost::HsEvaluator`]
/// with its workspace) performs no per-call allocation. Plain
/// `FnMut(&[f64], &mut [f64]) -> f64` closures implement this via the
/// blanket impl.
pub trait Evaluator {
    /// Evaluates the cost at `x`, writing `∂cost/∂x` into `grad`.
    fn eval(&mut self, x: &[f64], grad: &mut [f64]) -> f64;
}

impl<F: FnMut(&[f64], &mut [f64]) -> f64> Evaluator for F {
    fn eval(&mut self, x: &[f64], grad: &mut [f64]) -> f64 {
        self(x, grad)
    }
}

/// A cost-and-gradient evaluator over a batch of SoA *lanes*.
///
/// One call evaluates `lanes` independent parameter vectors at once; the
/// implementation (e.g. [`crate::cost::HsBatchEvaluator`]) amortizes shared
/// work — template traversal, gate placement decoding — across the batch
/// and vectorizes the per-lane arithmetic.
///
/// All stacks are **lane-major**: parameter `p` of lane `b` lives at
/// `xs[p * lanes + b]`, and likewise for `grads`; `costs` holds one entry
/// per lane.
///
/// # Determinism contract
///
/// Each lane must be an independent accumulation chain: lane `b`'s cost and
/// gradient are bit-identical to a `lanes = 1` evaluation of the same
/// parameters, for any batch width and any contents of the other lanes.
/// [`minimize_batched`] relies on this to stay bit-identical to the serial
/// start sweep while lanes retire and refill.
pub trait BatchEvaluator {
    /// Maximum lane count a single [`eval_lanes`](Self::eval_lanes) call
    /// supports (the workspace capacity).
    fn max_lanes(&self) -> usize;

    /// Evaluates `lanes` parameter vectors packed lane-major in `xs`,
    /// writing one cost per lane and the gradients lane-major into `grads`.
    fn eval_lanes(&mut self, lanes: usize, xs: &[f64], costs: &mut [f64], grads: &mut [f64]);
}

/// What one optimizer start produced.
struct StartOutcome {
    params: Vec<f64>,
    cost: f64,
    evals: usize,
    /// True when the start aborted on a non-finite cost or gradient.
    poisoned: bool,
    /// Aborted attempts (non-finite or panicked) consumed by this start,
    /// including retries. The final outcome may still be clean.
    poisoned_attempts: usize,
}

/// Runs one Adam start from `x`, returning the first iterate that achieved
/// the start's minimum cost (strict-improvement tracking, matching the
/// global serial sweep).
fn run_start<E: Evaluator>(
    eval: &mut E,
    mut x: Vec<f64>,
    num_params: usize,
    cfg: &OptimizerConfig,
) -> StartOutcome {
    let mut best_params = x.clone();
    let mut best_cost = f64::INFINITY;
    let mut evals = 0;
    let mut g = vec![0.0; num_params];
    let (mut m, mut v) = (vec![0.0; num_params], vec![0.0; num_params]);
    let (b1, b2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
    // Adaptive schedule: halve the step when progress stalls so the
    // final approach to a minimum is not limited by a fixed step size.
    let mut lr = cfg.learning_rate;
    let mut start_best = f64::INFINITY;
    let mut stall = 0usize;
    let mut poisoned = false;
    for iter in 1..=cfg.max_iters {
        #[allow(unused_mut)]
        let mut c = eval.eval(&x, &mut g);
        evals += 1;
        qfault::inject!("qsynth.cost", nan, c);
        // A non-finite cost or gradient poisons every later Adam iterate;
        // abort the start so the caller can redraw from a fresh seed.
        if !c.is_finite() || g.iter().any(|v| !v.is_finite()) {
            poisoned = true;
            break;
        }
        if c < best_cost {
            best_cost = c;
            best_params.copy_from_slice(&x);
        }
        if c < start_best * (1.0 - 1e-3) {
            start_best = c;
            stall = 0;
        } else {
            stall += 1;
            if stall >= 30 {
                lr = (lr * 0.5).max(1e-5);
                stall = 0;
            }
        }
        if c <= cfg.target_cost {
            break;
        }
        // Iteration counts stay far below i32::MAX; beyond ~10^3 the
        // bias-correction factor is 1.0 to machine precision anyway.
        #[allow(clippy::cast_possible_truncation)]
        let t = iter as i32;
        let b1t = 1.0 - b1.powi(t);
        let b2t = 1.0 - b2.powi(t);
        for i in 0..num_params {
            m[i] = b1 * m[i] + (1.0 - b1) * g[i];
            v[i] = b2 * v[i] + (1.0 - b2) * g[i] * g[i];
            let mhat = m[i] / b1t;
            let vhat = v[i] / b2t;
            x[i] -= lr * mhat / (vhat.sqrt() + eps);
        }
    }
    StartOutcome {
        params: best_params,
        cost: best_cost,
        evals,
        poisoned,
        poisoned_attempts: usize::from(poisoned),
    }
}

/// Runs one start with panic isolation. A panicking evaluator (or an
/// injected fault) yields `None` instead of tearing down the worker pool;
/// its eval count is unknowable and charged as zero.
fn attempt_start<E: Evaluator>(
    eval: &mut E,
    x: Vec<f64>,
    num_params: usize,
    cfg: &OptimizerConfig,
) -> Option<StartOutcome> {
    // Evaluator workspaces are plain numeric buffers fully rewritten by
    // each eval, so reuse after an unwind cannot observe torn state.
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        run_start(eval, x, num_params, cfg)
    }))
    .ok()
}

/// Runs start `s` to a usable outcome: a poisoned or panicked attempt is
/// retried up to [`MAX_POISON_RETRIES`] times from [`retry_point`]'s salted
/// stream. Clean attempts take exactly the pre-existing code path, so runs
/// that never poison stay bit-identical to an unguarded sweep.
fn run_start_resilient<E: Evaluator>(
    eval: &mut E,
    s: usize,
    num_params: usize,
    warm_start: Option<&[f64]>,
    cfg: &OptimizerConfig,
) -> StartOutcome {
    let mut evals = 0;
    let mut poisoned_attempts = 0;
    for attempt in 0..=MAX_POISON_RETRIES {
        let x = if attempt == 0 {
            initial_point(s, num_params, warm_start, cfg)
        } else {
            retry_point(s, attempt, num_params, cfg)
        };
        match attempt_start(eval, x, num_params, cfg) {
            Some(out) if !out.poisoned => {
                return StartOutcome {
                    evals: evals + out.evals,
                    poisoned_attempts,
                    ..out
                };
            }
            Some(out) => {
                evals += out.evals;
                poisoned_attempts += 1;
            }
            None => poisoned_attempts += 1,
        }
    }
    // Every attempt poisoned: return an inert outcome that can never beat
    // a finite start in the reduction.
    StartOutcome {
        params: vec![0.0; num_params],
        cost: f64::INFINITY,
        evals,
        poisoned: true,
        poisoned_attempts,
    }
}

/// Builds start `s`'s initial point. All starts share one logical RNG
/// stream seeded with `cfg.seed`: start `s` fast-forwards the stream past
/// the draws earlier starts consumed (a warm first start consumes none),
/// so the points are identical to a serial shared-RNG sweep regardless of
/// which thread builds them.
fn initial_point(
    s: usize,
    num_params: usize,
    warm_start: Option<&[f64]>,
    cfg: &OptimizerConfig,
) -> Vec<f64> {
    use std::f64::consts::PI;
    if s == 0 {
        if let Some(w) = warm_start {
            let mut x = vec![0.0; num_params];
            let k = w.len().min(num_params);
            x[..k].copy_from_slice(&w[..k]);
            return x;
        }
    }
    let burn = if warm_start.is_some() {
        (s - 1) * num_params
    } else {
        s * num_params
    };
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    for _ in 0..burn {
        let _ = rng.random_range(-PI..PI);
    }
    (0..num_params).map(|_| rng.random_range(-PI..PI)).collect()
}

/// Builds the initial point for retry `attempt` of a poisoned start `s`:
/// a fresh stream salted with the start index and retry ordinal, which a
/// clean run never samples. Deterministic for a given `(seed, s, attempt)`
/// and independent of thread scheduling.
fn retry_point(s: usize, attempt: usize, num_params: usize, cfg: &OptimizerConfig) -> Vec<f64> {
    use std::f64::consts::PI;
    let salt = 0x9E37_79B9_7F4A_7C15u64
        .wrapping_mul(s as u64 + 1)
        .wrapping_add(attempt as u64);
    let mut rng = StdRng::seed_from_u64(cfg.seed ^ salt);
    (0..num_params).map(|_| rng.random_range(-PI..PI)).collect()
}

/// Minimizes the evaluator produced by `make_eval` over `num_params` angles.
///
/// `make_eval` is called once per worker (each worker owns its evaluator's
/// mutable state, e.g. a gradient workspace). The first start uses
/// `warm_start` when provided (missing tail entries are zero-filled);
/// remaining starts are random. Returns the best point across all starts —
/// bit-identical whether the starts run serially or on a worker pool.
pub fn minimize<E, F>(
    make_eval: F,
    num_params: usize,
    warm_start: Option<&[f64]>,
    cfg: &OptimizerConfig,
) -> OptimizeOutcome
where
    E: Evaluator,
    F: Fn() -> E + Sync,
{
    let width = if cfg.parallel {
        std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get)
            .min(cfg.restarts.max(1))
    } else {
        1
    };
    minimize_with_width(make_eval, num_params, warm_start, cfg, width)
}

/// [`minimize`] with an explicit worker-pool width (`1` = fully serial).
/// Exposed so the determinism contract is directly testable.
pub fn minimize_with_width<E, F>(
    make_eval: F,
    num_params: usize,
    warm_start: Option<&[f64]>,
    cfg: &OptimizerConfig,
    width: usize,
) -> OptimizeOutcome
where
    E: Evaluator,
    F: Fn() -> E + Sync,
{
    let nstarts = cfg.restarts.max(1);
    let mut results: Vec<Option<StartOutcome>> = (0..nstarts).map(|_| None).collect();

    if width <= 1 {
        // Serial sweep keeps the early-stop: later starts never run once a
        // start reaches the target cost.
        let mut eval = make_eval();
        for (s, slot) in results.iter_mut().enumerate() {
            let out = run_start_resilient(&mut eval, s, num_params, warm_start, cfg);
            let reached = out.cost <= cfg.target_cost;
            *slot = Some(out);
            if reached {
                break;
            }
        }
    } else {
        let cells: Vec<OnceLock<StartOutcome>> = (0..nstarts).map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        // A panic that escapes `run_start_resilient`'s own isolation (a bug
        // in the queue itself, an injected fault in the spawn path) kills one
        // worker; the survivors keep draining the queue. Degrade instead of
        // panicking: starts whose cells were never set are counted as
        // poisoned below and flow into the pipeline's degradation stats.
        let scope_result = crossbeam::thread::scope(|scope| {
            for _ in 0..width.min(nstarts) {
                scope.spawn(|_| {
                    let mut eval = make_eval();
                    loop {
                        let s = next.fetch_add(1, Ordering::Relaxed);
                        if s >= nstarts {
                            break;
                        }
                        let out = run_start_resilient(&mut eval, s, num_params, warm_start, cfg);
                        let _ = cells[s].set(out);
                    }
                });
            }
        });
        if scope_result.is_err() {
            qobs::metrics::counter("qsynth.worker_panics", 1);
        }
        for (slot, cell) in results.iter_mut().zip(cells) {
            *slot = cell.into_inner();
        }
    }

    reduce_outcomes(&results, num_params, cfg)
}

/// Deterministic reduction shared by the threaded and batched front ends,
/// equivalent to the serial sweep: only starts up to (and including) the
/// first one that reached the target count — the serial loop would have
/// stopped there — and ties on cost go to the earliest start.
fn reduce_outcomes(
    results: &[Option<StartOutcome>],
    num_params: usize,
    cfg: &OptimizerConfig,
) -> OptimizeOutcome {
    let mut best: Option<(usize, &StartOutcome)> = None;
    let mut evals = 0;
    let mut poisoned_starts = 0;
    for (s, out) in results.iter().enumerate() {
        let Some(out) = out.as_ref() else {
            // A start that produced no outcome: either the serial sweep
            // early-stopped before it (not degradation), or its worker died
            // mid-run. Only the latter leaves a hole before the reduction's
            // own stopping point, and it is counted as poisoned so the
            // pipeline reports the run as degraded.
            poisoned_starts += 1;
            continue;
        };
        evals += out.evals;
        poisoned_starts += out.poisoned_attempts;
        if best.is_none_or(|(_, b)| out.cost < b.cost) {
            best = Some((s, out));
        }
        if out.cost <= cfg.target_cost {
            break;
        }
    }

    // Instantiation cost: one metric per optimizer call would be noisy, so
    // only the aggregate gradient-evaluation count is published.
    qobs::metrics::counter("qsynth.instantiation_iters", evals as u64);
    match best {
        Some((_, best)) => OptimizeOutcome {
            params: best.params.clone(),
            cost: best.cost,
            evals,
            poisoned_starts,
        },
        // Every start was lost (all workers died before setting a cell):
        // return an inert outcome — infinite cost so no caller ever selects
        // it as an approximation — rather than panicking the pipeline.
        None => OptimizeOutcome {
            params: vec![0.0; num_params],
            cost: f64::INFINITY,
            evals,
            poisoned_starts,
        },
    }
}

/// Adam state of one live lane in the batched engine. Every numeric field
/// evolves through exactly the scalar operations [`run_start`] performs, so
/// a lane's trajectory is bit-identical to the serial start it replaces.
struct LaneState {
    /// Start index this lane is running.
    s: usize,
    /// Poison-retry ordinal of the current attempt (0 = initial point).
    attempt: usize,
    /// Current 1-based Adam iteration of the attempt.
    iter: usize,
    x: Vec<f64>,
    m: Vec<f64>,
    v: Vec<f64>,
    lr: f64,
    start_best: f64,
    stall: usize,
    best_params: Vec<f64>,
    best_cost: f64,
    /// Gradient evaluations consumed by the current attempt.
    attempt_evals: usize,
    /// Evaluations carried over from earlier poisoned attempts of this
    /// start (a panicked attempt's count is unknowable and charged as zero,
    /// matching [`attempt_start`]).
    carried_evals: usize,
    poisoned_attempts: usize,
    /// Set when this step retired the lane (start finished or written off).
    done: bool,
}

impl LaneState {
    fn new(s: usize, x: Vec<f64>, cfg: &OptimizerConfig) -> Self {
        let n = x.len();
        LaneState {
            s,
            attempt: 0,
            iter: 1,
            best_params: x.clone(),
            x,
            m: vec![0.0; n],
            v: vec![0.0; n],
            lr: cfg.learning_rate,
            start_best: f64::INFINITY,
            stall: 0,
            best_cost: f64::INFINITY,
            attempt_evals: 0,
            carried_evals: 0,
            poisoned_attempts: 0,
            done: false,
        }
    }

    /// Restarts the lane on a fresh attempt point, resetting all Adam state
    /// exactly as a new [`run_start`] call would.
    fn reset_attempt(&mut self, x: Vec<f64>, cfg: &OptimizerConfig) {
        self.iter = 1;
        self.best_params.copy_from_slice(&x);
        self.x = x;
        self.m.fill(0.0);
        self.v.fill(0.0);
        self.lr = cfg.learning_rate;
        self.start_best = f64::INFINITY;
        self.stall = 0;
        self.best_cost = f64::INFINITY;
        self.attempt_evals = 0;
    }

    /// The finished start's outcome (valid once the attempt completed
    /// cleanly).
    fn finish(&self) -> StartOutcome {
        StartOutcome {
            params: self.best_params.clone(),
            cost: self.best_cost,
            evals: self.carried_evals + self.attempt_evals,
            poisoned: false,
            poisoned_attempts: self.poisoned_attempts,
        }
    }

    /// The inert outcome of a start whose every attempt poisoned.
    fn write_off(&self, num_params: usize) -> StartOutcome {
        StartOutcome {
            params: vec![0.0; num_params],
            cost: f64::INFINITY,
            evals: self.carried_evals,
            poisoned: true,
            poisoned_attempts: self.poisoned_attempts,
        }
    }
}

/// What one batched step did to a lane.
enum LaneFate {
    /// Lane keeps iterating.
    Running,
    /// Attempt completed cleanly (target reached or iteration budget spent).
    Finished,
    /// Attempt hit a non-finite cost or gradient.
    Poisoned,
}

/// Advances one lane through exactly the per-iteration logic of
/// [`run_start`]: poison check, best tracking, stall-based learning-rate
/// halving, early stop, then the Adam update. `w` is the stride of the
/// lane-major `grads` stack and `b` the column this lane reads.
fn lane_step(
    lane: &mut LaneState,
    #[allow(unused_mut)] mut c: f64,
    grads: &[f64],
    w: usize,
    b: usize,
    num_params: usize,
    cfg: &OptimizerConfig,
) -> LaneFate {
    lane.attempt_evals += 1;
    qfault::inject!("qsynth.cost", nan, c);
    if !c.is_finite() || (0..num_params).any(|i| !grads[i * w + b].is_finite()) {
        return LaneFate::Poisoned;
    }
    if c < lane.best_cost {
        lane.best_cost = c;
        lane.best_params.copy_from_slice(&lane.x);
    }
    if c < lane.start_best * (1.0 - 1e-3) {
        lane.start_best = c;
        lane.stall = 0;
    } else {
        lane.stall += 1;
        if lane.stall >= 30 {
            lane.lr = (lane.lr * 0.5).max(1e-5);
            lane.stall = 0;
        }
    }
    if c <= cfg.target_cost || lane.iter == cfg.max_iters {
        return LaneFate::Finished;
    }
    // Iteration counts stay far below i32::MAX (same bound as run_start).
    #[allow(clippy::cast_possible_truncation)]
    let t = lane.iter as i32;
    let (b1, b2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
    let b1t = 1.0 - b1.powi(t);
    let b2t = 1.0 - b2.powi(t);
    for i in 0..num_params {
        let g = grads[i * w + b];
        lane.m[i] = b1 * lane.m[i] + (1.0 - b1) * g;
        lane.v[i] = b2 * lane.v[i] + (1.0 - b2) * g * g;
        let mhat = lane.m[i] / b1t;
        let vhat = lane.v[i] / b2t;
        lane.x[i] -= lane.lr * mhat / (vhat.sqrt() + eps);
    }
    lane.iter += 1;
    LaneFate::Running
}

/// Minimizes over `num_params` angles with all starts sharing batched SoA
/// evaluations — the synthesis hot-loop entry point.
///
/// `make_eval` receives the resolved batch width (`cfg.batch_width` clamped
/// to [`MAX_BATCH`] and the start count) and builds the batch evaluator
/// sized for it, e.g. `|w| cost_fn.batch_evaluator(w)`. Start scheduling,
/// warm starts, poison retries, early stopping, and the reduction all
/// follow [`minimize`]'s semantics exactly; the returned outcome is
/// bit-identical to the serial sweep for any batch width.
pub fn minimize_batched<E, F>(
    make_eval: F,
    num_params: usize,
    warm_start: Option<&[f64]>,
    cfg: &OptimizerConfig,
) -> OptimizeOutcome
where
    E: BatchEvaluator,
    F: FnOnce(usize) -> E,
{
    let width = cfg.batch_width.clamp(1, MAX_BATCH).min(cfg.restarts.max(1));
    let mut eval = make_eval(width);
    let width = width.min(eval.max_lanes()).max(1);
    minimize_batched_with_width(&mut eval, num_params, warm_start, cfg, width)
}

/// [`minimize_batched`] with a pre-built evaluator and an explicit batch
/// width (`1` = one lane, the serial sweep). Exposed so the width-invariance
/// contract is directly testable.
///
/// # Panics
///
/// Panics if `width` is 0 or exceeds `eval.max_lanes()`.
pub fn minimize_batched_with_width<E: BatchEvaluator>(
    eval: &mut E,
    num_params: usize,
    warm_start: Option<&[f64]>,
    cfg: &OptimizerConfig,
    width: usize,
) -> OptimizeOutcome {
    assert!(
        width >= 1 && width <= eval.max_lanes(),
        "batch width {width} outside evaluator capacity {}",
        eval.max_lanes()
    );
    let nstarts = cfg.restarts.max(1);
    let mut results: Vec<Option<StartOutcome>> = (0..nstarts).map(|_| None).collect();

    // Degenerate budget: run_start never evaluates, so every start yields
    // its initial point with an infinite best cost and zero evals.
    if cfg.max_iters == 0 {
        for (s, slot) in results.iter_mut().enumerate() {
            *slot = Some(StartOutcome {
                params: initial_point(s, num_params, warm_start, cfg),
                cost: f64::INFINITY,
                evals: 0,
                poisoned: false,
                poisoned_attempts: 0,
            });
        }
        return reduce_outcomes(&results, num_params, cfg);
    }

    let mut lanes: Vec<LaneState> = Vec::with_capacity(width);
    let mut next_start = 0usize;
    // Lowest start index that reached the target cost. The reduction never
    // looks past it, so starts after it are neither scheduled nor finished
    // — the batched analogue of the serial sweep's early stop.
    let mut reached_at: Option<usize> = None;
    while next_start < nstarts.min(width) {
        lanes.push(LaneState::new(
            next_start,
            initial_point(next_start, num_params, warm_start, cfg),
            cfg,
        ));
        next_start += 1;
    }

    let mut xs = vec![0.0; num_params * width];
    let mut costs = vec![0.0; width];
    let mut grads = vec![0.0; num_params * width];

    while !lanes.is_empty() {
        let w = lanes.len();
        for (b, lane) in lanes.iter().enumerate() {
            for (p, &v) in lane.x.iter().enumerate() {
                xs[p * w + b] = v;
            }
        }
        // A panicking evaluator (an injected fault) cannot be attributed to
        // one lane, so it poisons every live attempt; each retries from its
        // salted seed exactly as a panicked serial attempt would, with the
        // attempt's eval count charged as zero (it is unknowable).
        let panicked = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            eval.eval_lanes(
                w,
                &xs[..num_params * w],
                &mut costs[..w],
                &mut grads[..num_params * w],
            );
        }))
        .is_err();

        for (b, lane) in lanes.iter_mut().enumerate() {
            let fate = if panicked {
                lane.attempt_evals = 0;
                LaneFate::Poisoned
            } else {
                lane_step(
                    lane,
                    costs[b],
                    &grads[..num_params * w],
                    w,
                    b,
                    num_params,
                    cfg,
                )
            };
            match fate {
                LaneFate::Running => {}
                LaneFate::Finished => {
                    let out = lane.finish();
                    if out.cost <= cfg.target_cost && reached_at.is_none_or(|r| lane.s < r) {
                        reached_at = Some(lane.s);
                    }
                    results[lane.s] = Some(out);
                    lane.done = true;
                }
                LaneFate::Poisoned => {
                    lane.carried_evals += lane.attempt_evals;
                    lane.poisoned_attempts += 1;
                    if lane.attempt < MAX_POISON_RETRIES {
                        lane.attempt += 1;
                        let x = retry_point(lane.s, lane.attempt, num_params, cfg);
                        lane.reset_attempt(x, cfg);
                    } else {
                        results[lane.s] = Some(lane.write_off(num_params));
                        lane.done = true;
                    }
                }
            }
        }

        // Retire finished lanes (and abandon starts the reduction can never
        // reach), then refill from the start queue.
        lanes.retain(|l| !l.done && reached_at.is_none_or(|r| l.s < r));
        while reached_at.is_none() && next_start < nstarts && lanes.len() < width {
            lanes.push(LaneState::new(
                next_start,
                initial_point(next_start, num_params, warm_start, cfg),
                cfg,
            ));
            next_start += 1;
        }
    }

    reduce_outcomes(&results, num_params, cfg)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simple convex bowl with minimum at (1, −2, 3).
    fn bowl(x: &[f64], g: &mut [f64]) -> f64 {
        let target = [1.0, -2.0, 3.0];
        let mut c = 0.0;
        for i in 0..3 {
            let d = x[i] - target[i];
            c += d * d;
            g[i] = 2.0 * d;
        }
        c
    }

    #[test]
    fn minimizes_quadratic_bowl() {
        let cfg = OptimizerConfig {
            max_iters: 2000,
            learning_rate: 0.05,
            restarts: 1,
            target_cost: 1e-12,
            seed: 1,
            parallel: true,
            batch_width: qmath::kernels::MAX_BATCH,
        };
        let out = minimize(|| bowl, 3, None, &cfg);
        assert!(out.cost < 1e-6, "cost {}", out.cost);
        assert!((out.params[0] - 1.0).abs() < 1e-3);
        assert!((out.params[1] + 2.0).abs() < 1e-3);
        assert!((out.params[2] - 3.0).abs() < 1e-3);
    }

    #[test]
    fn warm_start_speeds_convergence() {
        let cfg = OptimizerConfig {
            max_iters: 20,
            learning_rate: 0.05,
            restarts: 1,
            target_cost: 1e-12,
            seed: 2,
            parallel: true,
            batch_width: qmath::kernels::MAX_BATCH,
        };
        let cold = minimize(|| bowl, 3, None, &cfg);
        let warm = minimize(|| bowl, 3, Some(&[1.0, -2.0, 3.0]), &cfg);
        assert!(warm.cost < cold.cost);
        assert!(warm.cost < 1e-10);
    }

    #[test]
    fn restarts_escape_bad_basins() {
        // Rastrigin-ish 1D with many local minima; global at 0.
        let nasty = |x: &[f64], g: &mut [f64]| {
            let v = x[0];
            g[0] = 2.0 * v + 6.0 * (2.0 * v).sin();
            v * v + 3.0 * (1.0 - (2.0 * v).cos())
        };
        let cfg = OptimizerConfig {
            max_iters: 500,
            learning_rate: 0.03,
            restarts: 8,
            target_cost: 1e-10,
            seed: 3,
            parallel: true,
            batch_width: qmath::kernels::MAX_BATCH,
        };
        let out = minimize(|| nasty, 1, Some(&[2.9]), &cfg);
        assert!(out.cost < 0.5, "stuck at {}", out.cost);
    }

    #[test]
    fn early_stop_respects_target() {
        let cfg = OptimizerConfig {
            max_iters: 100_000,
            learning_rate: 0.05,
            restarts: 1,
            target_cost: 1e-3,
            seed: 4,
            parallel: true,
            batch_width: qmath::kernels::MAX_BATCH,
        };
        let out = minimize(|| bowl, 3, None, &cfg);
        assert!(out.cost <= 1e-3);
        assert!(out.evals < 100_000, "should stop early, used {}", out.evals);
    }

    #[test]
    fn parallel_starts_match_serial_bitwise() {
        // The determinism contract: any pool width returns bit-identical
        // params, cost, and eval count to the width-1 serial sweep.
        let nasty = |x: &[f64], g: &mut [f64]| {
            let mut c = 0.0;
            for i in 0..x.len() {
                let v = x[i];
                g[i] = 2.0 * v + 6.0 * (2.0 * v).sin();
                c += v * v + 3.0 * (1.0 - (2.0 * v).cos());
            }
            c
        };
        for warm in [None, Some([2.9, -1.4, 0.3].as_slice())] {
            let cfg = OptimizerConfig {
                max_iters: 200,
                learning_rate: 0.03,
                restarts: 5,
                target_cost: 1e-10,
                seed: 7,
                parallel: true,
                batch_width: qmath::kernels::MAX_BATCH,
            };
            let serial = minimize_with_width(|| nasty, 3, warm, &cfg, 1);
            for width in [2, 4, 8] {
                let par = minimize_with_width(|| nasty, 3, warm, &cfg, width);
                assert_eq!(par.cost.to_bits(), serial.cost.to_bits(), "width {width}");
                assert_eq!(par.params, serial.params, "width {width}");
                assert_eq!(par.evals, serial.evals, "width {width}");
            }
        }
    }

    #[test]
    fn nan_cost_start_recovers_from_salted_seed() {
        // First evaluation of the run poisons; the retry draws from the
        // salted stream and must still converge to a finite optimum.
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = AtomicUsize::new(0);
        let cfg = OptimizerConfig {
            max_iters: 2000,
            learning_rate: 0.05,
            restarts: 1,
            target_cost: 1e-12,
            seed: 5,
            parallel: false,
            batch_width: qmath::kernels::MAX_BATCH,
        };
        let out = minimize(
            || {
                |x: &[f64], g: &mut [f64]| {
                    if calls.fetch_add(1, Ordering::Relaxed) == 0 {
                        g.fill(0.0);
                        return f64::NAN;
                    }
                    bowl(x, g)
                }
            },
            3,
            None,
            &cfg,
        );
        assert_eq!(out.poisoned_starts, 1);
        assert!(out.cost.is_finite());
        assert!(out.cost < 1e-6, "cost {}", out.cost);
    }

    #[test]
    fn panicking_start_recovers() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let calls = AtomicUsize::new(0);
        let cfg = OptimizerConfig {
            max_iters: 2000,
            learning_rate: 0.05,
            restarts: 1,
            target_cost: 1e-12,
            seed: 6,
            parallel: false,
            batch_width: qmath::kernels::MAX_BATCH,
        };
        let out = minimize(
            || {
                |x: &[f64], g: &mut [f64]| {
                    assert!(calls.fetch_add(1, Ordering::Relaxed) > 0, "injected panic");
                    bowl(x, g)
                }
            },
            3,
            None,
            &cfg,
        );
        assert_eq!(out.poisoned_starts, 1);
        assert!(out.cost < 1e-6, "cost {}", out.cost);
    }

    #[test]
    fn fully_poisoned_run_returns_inert_outcome() {
        let cfg = OptimizerConfig {
            max_iters: 50,
            learning_rate: 0.05,
            restarts: 2,
            target_cost: 1e-12,
            seed: 8,
            parallel: false,
            batch_width: qmath::kernels::MAX_BATCH,
        };
        let out = minimize(
            || {
                |_: &[f64], g: &mut [f64]| {
                    g.fill(0.0);
                    f64::NAN
                }
            },
            3,
            None,
            &cfg,
        );
        assert!(out.cost.is_infinite());
        assert_eq!(out.poisoned_starts, 2 * (MAX_POISON_RETRIES + 1));
    }

    #[test]
    fn clean_runs_unaffected_by_guards() {
        // poisoned_starts is zero and results match on repeat runs.
        let cfg = OptimizerConfig {
            max_iters: 300,
            learning_rate: 0.05,
            restarts: 3,
            target_cost: 1e-14,
            seed: 9,
            parallel: true,
            batch_width: qmath::kernels::MAX_BATCH,
        };
        let a = minimize(|| bowl, 3, None, &cfg);
        let b = minimize(|| bowl, 3, None, &cfg);
        assert_eq!(a.poisoned_starts, 0);
        assert_eq!(a.cost.to_bits(), b.cost.to_bits());
        assert_eq!(a.params, b.params);
    }

    #[test]
    fn serial_early_stop_and_parallel_account_same_evals() {
        // A start that hits the target stops the serial sweep; the parallel
        // reduction must charge exactly the same starts.
        let cfg = OptimizerConfig {
            max_iters: 5000,
            learning_rate: 0.05,
            restarts: 4,
            target_cost: 1e-9,
            seed: 11,
            parallel: true,
            batch_width: qmath::kernels::MAX_BATCH,
        };
        let serial = minimize_with_width(|| bowl, 3, None, &cfg, 1);
        let par = minimize_with_width(|| bowl, 3, None, &cfg, 4);
        assert!(serial.cost <= cfg.target_cost);
        assert_eq!(par.evals, serial.evals);
        assert_eq!(par.params, serial.params);
    }
}
