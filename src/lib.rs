//! Umbrella crate for the QUEST reproduction workspace.
//!
//! Re-exports the member crates so the `examples/` and `tests/` at the
//! repository root can reach the whole system through one dependency. See
//! the individual crates for the real APIs:
//!
//! * [`quest`] — the paper's contribution (partition → approximate
//!   synthesis → dissimilar selection → averaging),
//! * [`qcircuit`] / [`qmath`] — circuit IR and linear algebra,
//! * [`qsim`] — ideal and noisy simulation,
//! * [`qsynth`] — LEAP-style numerical synthesis,
//! * [`qpartition`] — scan partitioner,
//! * [`qanneal`] — dual annealing,
//! * [`qtranspile`] — the Qiskit-baseline pass pipeline,
//! * [`qbench`] — the Table-1 workload generators.

pub use qanneal;
pub use qbench;
pub use qcircuit;
pub use qmath;
pub use qpartition;
pub use qsim;
pub use qsynth;
pub use qtranspile;
pub use quest;
