//! Table 1: the benchmark suite with circuit statistics.

fn main() {
    let rows: Vec<Vec<String>> = qbench::suite()
        .iter()
        .map(|b| {
            vec![
                b.name.clone(),
                b.circuit.num_qubits().to_string(),
                b.circuit.len().to_string(),
                b.circuit.cnot_count().to_string(),
                b.circuit.depth().to_string(),
            ]
        })
        .collect();
    bench::print_table(
        "Table 1: algorithms and benchmarks",
        &["algorithm", "qubits", "gates", "CNOTs", "depth"],
        &rows,
    );
}
