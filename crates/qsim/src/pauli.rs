//! Pauli-string observables and expectation values.
//!
//! Spin-chain case studies (paper Sec. 4.3) report magnetization, which is a
//! sum of single-site `⟨Z⟩` expectations; this module provides the general
//! machinery: a [`PauliString`] operator over the register and exact
//! expectation values against a statevector.

use crate::statevector::Statevector;
use qcircuit::Gate;
use qmath::C64;
use std::fmt;
use std::str::FromStr;

/// A single-qubit Pauli operator.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PauliOp {
    /// Identity.
    I,
    /// Pauli-X.
    X,
    /// Pauli-Y.
    Y,
    /// Pauli-Z.
    Z,
}

/// A tensor product of single-qubit Paulis over the whole register; index 0
/// acts on qubit 0 (the most significant bit).
///
/// ```
/// use qsim::pauli::PauliString;
/// use qsim::Statevector;
///
/// let zz: PauliString = "ZZ".parse().unwrap();
/// let state = Statevector::zero_state(2);
/// assert!((zz.expectation(&state) - 1.0).abs() < 1e-12);
/// ```
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct PauliString(Vec<PauliOp>);

impl PauliString {
    /// Creates a string from explicit operators.
    pub fn new(ops: Vec<PauliOp>) -> Self {
        PauliString(ops)
    }

    /// The identity string on `n` qubits.
    pub fn identity(n: usize) -> Self {
        PauliString(vec![PauliOp::I; n])
    }

    /// A single-site operator: `op` on `qubit`, identity elsewhere.
    ///
    /// # Panics
    ///
    /// Panics if `qubit >= n`.
    pub fn single(n: usize, qubit: usize, op: PauliOp) -> Self {
        assert!(qubit < n, "qubit out of range");
        let mut ops = vec![PauliOp::I; n];
        ops[qubit] = op;
        PauliString(ops)
    }

    /// Number of qubits the string spans.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Returns `true` for the zero-qubit string.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// The operators, qubit 0 first.
    pub fn ops(&self) -> &[PauliOp] {
        &self.0
    }

    /// Number of non-identity sites.
    pub fn weight(&self) -> usize {
        self.0.iter().filter(|&&op| op != PauliOp::I).count()
    }

    /// Applies the string to a state, returning `P|ψ⟩`.
    ///
    /// # Panics
    ///
    /// Panics if the widths differ.
    pub fn apply(&self, state: &Statevector) -> Statevector {
        assert_eq!(self.len(), state.num_qubits(), "width mismatch");
        let mut out = state.clone();
        for (q, op) in self.0.iter().enumerate() {
            let gate = match op {
                PauliOp::I => continue,
                PauliOp::X => Gate::X,
                PauliOp::Y => Gate::Y,
                PauliOp::Z => Gate::Z,
            };
            out.apply_gate(gate, &[q]);
        }
        out
    }

    /// Exact expectation value `⟨ψ|P|ψ⟩` (real because P is Hermitian).
    pub fn expectation(&self, state: &Statevector) -> f64 {
        let transformed = self.apply(state);
        let mut acc = C64::ZERO;
        for (a, b) in state.amplitudes().iter().zip(transformed.amplitudes()) {
            acc += a.conj() * *b;
        }
        acc.re
    }
}

impl FromStr for PauliString {
    type Err = String;

    /// Parses strings like `"IZZX"` (qubit 0 first).
    fn from_str(s: &str) -> Result<Self, String> {
        s.chars()
            .map(|c| match c.to_ascii_uppercase() {
                'I' => Ok(PauliOp::I),
                'X' => Ok(PauliOp::X),
                'Y' => Ok(PauliOp::Y),
                'Z' => Ok(PauliOp::Z),
                other => Err(format!("invalid Pauli character `{other}`")),
            })
            .collect::<Result<Vec<_>, _>>()
            .map(PauliString)
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for op in &self.0 {
            let c = match op {
                PauliOp::I => 'I',
                PauliOp::X => 'X',
                PauliOp::Y => 'Y',
                PauliOp::Z => 'Z',
            };
            write!(f, "{c}")?;
        }
        Ok(())
    }
}

/// Average magnetization `(1/n) Σᵢ ⟨Zᵢ⟩` computed from the exact state —
/// the statevector counterpart of the distribution-based estimate in
/// `qbench::observables`.
pub fn average_magnetization(state: &Statevector) -> f64 {
    let n = state.num_qubits();
    (0..n)
        .map(|q| PauliString::single(n, q, PauliOp::Z).expectation(state))
        .sum::<f64>()
        / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use qcircuit::Circuit;

    #[test]
    fn z_on_basis_states() {
        let n = 2;
        let z0 = PauliString::single(n, 0, PauliOp::Z);
        assert!((z0.expectation(&Statevector::zero_state(n)) - 1.0).abs() < 1e-12);
        // |10⟩: qubit 0 is 1.
        assert!((z0.expectation(&Statevector::basis_state(n, 2)) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn x_on_plus_state() {
        let mut c = Circuit::new(1);
        c.h(0);
        let plus = Statevector::run(&c);
        let x = PauliString::single(1, 0, PauliOp::X);
        let z = PauliString::single(1, 0, PauliOp::Z);
        assert!((x.expectation(&plus) - 1.0).abs() < 1e-12);
        assert!(z.expectation(&plus).abs() < 1e-12);
    }

    #[test]
    fn zz_correlations_in_bell_state() {
        let mut c = Circuit::new(2);
        c.h(0).cnot(0, 1);
        let bell = Statevector::run(&c);
        let zz: PauliString = "ZZ".parse().unwrap();
        let xx: PauliString = "XX".parse().unwrap();
        let zi: PauliString = "ZI".parse().unwrap();
        assert!((zz.expectation(&bell) - 1.0).abs() < 1e-12);
        assert!((xx.expectation(&bell) - 1.0).abs() < 1e-12);
        assert!(zi.expectation(&bell).abs() < 1e-12);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!("IZQX".parse::<PauliString>().is_err());
        // Lowercase is accepted.
        assert!("izzx".parse::<PauliString>().is_ok());
    }

    #[test]
    fn display_roundtrip() {
        let p: PauliString = "IXYZ".parse().unwrap();
        assert_eq!(p.to_string(), "IXYZ");
        assert_eq!(p.weight(), 3);
    }

    #[test]
    fn magnetization_matches_distribution_estimate() {
        let c = qbench_free_tfim();
        let state = Statevector::run(&c);
        let exact = average_magnetization(&state);
        // Distribution-based estimate: Σ p(k)·m(k).
        let probs = state.probabilities();
        let n = c.num_qubits();
        let mut est = 0.0;
        for (k, &p) in probs.iter().enumerate() {
            let mut m = 0.0;
            for q in 0..n {
                let bit = (k >> (n - 1 - q)) & 1;
                m += if bit == 0 { 1.0 } else { -1.0 };
            }
            est += p * m / n as f64;
        }
        assert!((exact - est).abs() < 1e-10);
    }

    /// Local TFIM-like circuit to avoid a dev-dependency cycle on qbench.
    fn qbench_free_tfim() -> Circuit {
        let mut c = Circuit::new(3);
        for _ in 0..3 {
            for q in 0..2 {
                c.cnot(q, q + 1).rz(q + 1, 0.2).cnot(q, q + 1);
            }
            for q in 0..3 {
                c.rx(q, 0.2);
            }
        }
        c
    }

    #[test]
    fn expectation_is_in_valid_range() {
        let c = qbench_free_tfim();
        let state = Statevector::run(&c);
        for s in ["ZZZ", "XIX", "YYI"] {
            let p: PauliString = s.parse().unwrap();
            let e = p.expectation(&state);
            assert!((-1.0..=1.0).contains(&e), "{s}: {e}");
        }
    }
}
