//! Qubit-connectivity (coupling) maps.
//!
//! The LEAP family of synthesizers is *topology-aware*: the per-layer CNOT
//! placements can be restricted to a device's coupling graph so synthesized
//! circuits need no routing. This module provides the graph structure and
//! the common presets (line, ring, all-to-all, and the 5-qubit line of
//! IBMQ-Manila-class devices).

use std::collections::{BTreeSet, VecDeque};

/// An undirected qubit-connectivity graph.
///
/// ```
/// use qcircuit::topology::CouplingMap;
///
/// let line = CouplingMap::line(5);
/// assert!(line.connected(1, 2));
/// assert!(!line.connected(0, 4));
/// assert_eq!(line.distance(0, 4), Some(4));
/// ```
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CouplingMap {
    num_qubits: usize,
    edges: BTreeSet<(usize, usize)>,
}

impl CouplingMap {
    /// Creates a map from an explicit edge list (undirected; order within a
    /// pair does not matter).
    ///
    /// # Panics
    ///
    /// Panics on out-of-range or self-loop edges.
    pub fn new(num_qubits: usize, edge_list: &[(usize, usize)]) -> Self {
        let mut edges = BTreeSet::new();
        for &(a, b) in edge_list {
            assert!(a < num_qubits && b < num_qubits, "edge out of range");
            assert_ne!(a, b, "self-loop edge");
            edges.insert((a.min(b), a.max(b)));
        }
        CouplingMap { num_qubits, edges }
    }

    /// Fully-connected topology (the default for simulation studies).
    pub fn all_to_all(num_qubits: usize) -> Self {
        let edges: Vec<(usize, usize)> = (0..num_qubits)
            .flat_map(|a| ((a + 1)..num_qubits).map(move |b| (a, b)))
            .collect();
        CouplingMap::new(num_qubits, &edges)
    }

    /// Open chain `0 — 1 — … — n−1`.
    pub fn line(num_qubits: usize) -> Self {
        let edges: Vec<(usize, usize)> = (0..num_qubits.saturating_sub(1))
            .map(|q| (q, q + 1))
            .collect();
        CouplingMap::new(num_qubits, &edges)
    }

    /// Closed ring.
    ///
    /// # Panics
    ///
    /// Panics for fewer than 3 qubits.
    pub fn ring(num_qubits: usize) -> Self {
        assert!(num_qubits >= 3, "ring needs at least 3 qubits");
        let edges: Vec<(usize, usize)> =
            (0..num_qubits).map(|q| (q, (q + 1) % num_qubits)).collect();
        CouplingMap::new(num_qubits, &edges)
    }

    /// The 5-qubit line of IBMQ-Manila-class devices.
    pub fn manila() -> Self {
        CouplingMap::line(5)
    }

    /// Number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The undirected edges, each normalized to `(low, high)`.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.edges.iter().copied()
    }

    /// Number of edges.
    pub fn num_edges(&self) -> usize {
        self.edges.len()
    }

    /// Returns `true` when `a` and `b` share an edge.
    pub fn connected(&self, a: usize, b: usize) -> bool {
        a != b && self.edges.contains(&(a.min(b), a.max(b)))
    }

    /// Shortest-path (hop) distance between two qubits, or `None` when they
    /// sit in different components.
    pub fn distance(&self, a: usize, b: usize) -> Option<usize> {
        if a == b {
            return Some(0);
        }
        let mut seen = vec![false; self.num_qubits];
        let mut queue = VecDeque::new();
        seen[a] = true;
        queue.push_back((a, 0usize));
        while let Some((q, d)) = queue.pop_front() {
            for (next, seen_next) in seen.iter_mut().enumerate() {
                if self.connected(q, next) && !*seen_next {
                    if next == b {
                        return Some(d + 1);
                    }
                    *seen_next = true;
                    queue.push_back((next, d + 1));
                }
            }
        }
        None
    }

    /// Returns `true` when every qubit can reach every other.
    pub fn is_connected_graph(&self) -> bool {
        if self.num_qubits <= 1 {
            return true;
        }
        (1..self.num_qubits).all(|q| self.distance(0, q).is_some())
    }

    /// Restricts the map to a subset of qubits, relabelling them `0..k` in
    /// the order given — how a full-device map is projected onto a
    /// partitioned block.
    ///
    /// # Panics
    ///
    /// Panics on out-of-range or duplicate qubits.
    pub fn induced(&self, qubits: &[usize]) -> CouplingMap {
        for (i, &q) in qubits.iter().enumerate() {
            assert!(q < self.num_qubits, "qubit out of range");
            assert!(!qubits[..i].contains(&q), "duplicate qubit");
        }
        let mut edges = Vec::new();
        for (i, &a) in qubits.iter().enumerate() {
            for (j, &b) in qubits.iter().enumerate().skip(i + 1) {
                if self.connected(a, b) {
                    edges.push((i, j));
                }
            }
        }
        CouplingMap::new(qubits.len(), &edges)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_structure() {
        let m = CouplingMap::line(4);
        assert_eq!(m.num_edges(), 3);
        assert!(m.connected(0, 1) && m.connected(2, 3));
        assert!(!m.connected(0, 2));
        assert!(m.is_connected_graph());
    }

    #[test]
    fn ring_wraps_around() {
        let m = CouplingMap::ring(5);
        assert!(m.connected(4, 0));
        assert_eq!(m.distance(0, 3), Some(2)); // around the short way
    }

    #[test]
    fn all_to_all_has_every_edge() {
        let m = CouplingMap::all_to_all(4);
        assert_eq!(m.num_edges(), 6);
        assert_eq!(m.distance(0, 3), Some(1));
    }

    #[test]
    fn distance_on_line() {
        let m = CouplingMap::line(6);
        assert_eq!(m.distance(0, 5), Some(5));
        assert_eq!(m.distance(2, 2), Some(0));
    }

    #[test]
    fn disconnected_components() {
        let m = CouplingMap::new(4, &[(0, 1), (2, 3)]);
        assert_eq!(m.distance(0, 3), None);
        assert!(!m.is_connected_graph());
    }

    #[test]
    fn induced_subgraph_relabels() {
        let m = CouplingMap::line(5);
        // Take qubits [2, 3, 0]: edges (2,3) → local (0,1); nothing else.
        let sub = m.induced(&[2, 3, 0]);
        assert_eq!(sub.num_qubits(), 3);
        assert!(sub.connected(0, 1));
        assert!(!sub.connected(0, 2));
        assert!(!sub.connected(1, 2));
    }

    #[test]
    fn undirected_normalization() {
        let m = CouplingMap::new(3, &[(2, 0), (0, 2)]);
        assert_eq!(m.num_edges(), 1);
        assert!(m.connected(0, 2) && m.connected(2, 0));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn self_loop_panics() {
        let _ = CouplingMap::new(3, &[(1, 1)]);
    }
}
