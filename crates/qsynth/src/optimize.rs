//! Gradient-based angle optimization (Adam with random restarts).
//!
//! The synthesis cost landscape is non-convex; LEAP-family compilers handle
//! this with multi-start local optimization. Adam is robust here because the
//! cost and gradient are cheap and smooth; restarts draw fresh angles
//! uniformly from `[−π, π]`.
//!
//! Starts are independent, so [`minimize`] runs them on a bounded worker
//! pool (the PR-2 fan-out pattern) while staying **deterministic**: each
//! start's initial point comes from fast-forwarding a single seeded RNG
//! stream to that start's position (so start `s` sees exactly the draws the
//! serial loop would have given it), and the reduction picks the best
//! `(cost, start_index)` pair — bit-identical to the serial sweep for any
//! worker count. See DESIGN.md § "Synthesis hot path".

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::OnceLock;

/// Configuration for [`minimize`].
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct OptimizerConfig {
    /// Maximum Adam iterations per start.
    pub max_iters: usize,
    /// Adam learning rate.
    pub learning_rate: f64,
    /// Number of starts (the first uses the warm-start point when given).
    pub restarts: usize,
    /// Early-stop threshold on the cost value.
    pub target_cost: f64,
    /// RNG seed for restart initialization.
    pub seed: u64,
    /// Run independent starts on a bounded worker pool. The result is
    /// bit-identical either way; this only trades wall-clock for threads.
    pub parallel: bool,
}

impl Default for OptimizerConfig {
    fn default() -> Self {
        OptimizerConfig {
            max_iters: 400,
            learning_rate: 0.05,
            restarts: 2,
            target_cost: 1e-14,
            seed: 0,
            parallel: true,
        }
    }
}

/// Result of an optimization run.
#[derive(Clone, Debug)]
pub struct OptimizeOutcome {
    /// Best parameters found.
    pub params: Vec<f64>,
    /// Cost at those parameters.
    pub cost: f64,
    /// Total gradient evaluations spent.
    pub evals: usize,
}

/// A reusable cost-and-gradient evaluator.
///
/// `eval` writes the gradient into a caller-provided buffer and returns the
/// cost, so a stateful implementation (e.g. [`crate::cost::HsEvaluator`]
/// with its workspace) performs no per-call allocation. Plain
/// `FnMut(&[f64], &mut [f64]) -> f64` closures implement this via the
/// blanket impl.
pub trait Evaluator {
    /// Evaluates the cost at `x`, writing `∂cost/∂x` into `grad`.
    fn eval(&mut self, x: &[f64], grad: &mut [f64]) -> f64;
}

impl<F: FnMut(&[f64], &mut [f64]) -> f64> Evaluator for F {
    fn eval(&mut self, x: &[f64], grad: &mut [f64]) -> f64 {
        self(x, grad)
    }
}

/// What one optimizer start produced.
struct StartOutcome {
    params: Vec<f64>,
    cost: f64,
    evals: usize,
}

/// Runs one Adam start from `x`, returning the first iterate that achieved
/// the start's minimum cost (strict-improvement tracking, matching the
/// global serial sweep).
fn run_start<E: Evaluator>(
    eval: &mut E,
    mut x: Vec<f64>,
    num_params: usize,
    cfg: &OptimizerConfig,
) -> StartOutcome {
    let mut best_params = x.clone();
    let mut best_cost = f64::INFINITY;
    let mut evals = 0;
    let mut g = vec![0.0; num_params];
    let (mut m, mut v) = (vec![0.0; num_params], vec![0.0; num_params]);
    let (b1, b2, eps): (f64, f64, f64) = (0.9, 0.999, 1e-8);
    // Adaptive schedule: halve the step when progress stalls so the
    // final approach to a minimum is not limited by a fixed step size.
    let mut lr = cfg.learning_rate;
    let mut start_best = f64::INFINITY;
    let mut stall = 0usize;
    for iter in 1..=cfg.max_iters {
        let c = eval.eval(&x, &mut g);
        evals += 1;
        if c < best_cost {
            best_cost = c;
            best_params.copy_from_slice(&x);
        }
        if c < start_best * (1.0 - 1e-3) {
            start_best = c;
            stall = 0;
        } else {
            stall += 1;
            if stall >= 30 {
                lr = (lr * 0.5).max(1e-5);
                stall = 0;
            }
        }
        if c <= cfg.target_cost {
            break;
        }
        // Iteration counts stay far below i32::MAX; beyond ~10^3 the
        // bias-correction factor is 1.0 to machine precision anyway.
        #[allow(clippy::cast_possible_truncation)]
        let t = iter as i32;
        let b1t = 1.0 - b1.powi(t);
        let b2t = 1.0 - b2.powi(t);
        for i in 0..num_params {
            m[i] = b1 * m[i] + (1.0 - b1) * g[i];
            v[i] = b2 * v[i] + (1.0 - b2) * g[i] * g[i];
            let mhat = m[i] / b1t;
            let vhat = v[i] / b2t;
            x[i] -= lr * mhat / (vhat.sqrt() + eps);
        }
    }
    StartOutcome {
        params: best_params,
        cost: best_cost,
        evals,
    }
}

/// Builds start `s`'s initial point. All starts share one logical RNG
/// stream seeded with `cfg.seed`: start `s` fast-forwards the stream past
/// the draws earlier starts consumed (a warm first start consumes none),
/// so the points are identical to a serial shared-RNG sweep regardless of
/// which thread builds them.
fn initial_point(
    s: usize,
    num_params: usize,
    warm_start: Option<&[f64]>,
    cfg: &OptimizerConfig,
) -> Vec<f64> {
    use std::f64::consts::PI;
    if s == 0 {
        if let Some(w) = warm_start {
            let mut x = vec![0.0; num_params];
            let k = w.len().min(num_params);
            x[..k].copy_from_slice(&w[..k]);
            return x;
        }
    }
    let burn = if warm_start.is_some() {
        (s - 1) * num_params
    } else {
        s * num_params
    };
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    for _ in 0..burn {
        let _ = rng.random_range(-PI..PI);
    }
    (0..num_params).map(|_| rng.random_range(-PI..PI)).collect()
}

/// Minimizes the evaluator produced by `make_eval` over `num_params` angles.
///
/// `make_eval` is called once per worker (each worker owns its evaluator's
/// mutable state, e.g. a gradient workspace). The first start uses
/// `warm_start` when provided (missing tail entries are zero-filled);
/// remaining starts are random. Returns the best point across all starts —
/// bit-identical whether the starts run serially or on a worker pool.
pub fn minimize<E, F>(
    make_eval: F,
    num_params: usize,
    warm_start: Option<&[f64]>,
    cfg: &OptimizerConfig,
) -> OptimizeOutcome
where
    E: Evaluator,
    F: Fn() -> E + Sync,
{
    let width = if cfg.parallel {
        std::thread::available_parallelism()
            .map_or(1, std::num::NonZeroUsize::get)
            .min(cfg.restarts.max(1))
    } else {
        1
    };
    minimize_with_width(make_eval, num_params, warm_start, cfg, width)
}

/// [`minimize`] with an explicit worker-pool width (`1` = fully serial).
/// Exposed so the determinism contract is directly testable.
pub fn minimize_with_width<E, F>(
    make_eval: F,
    num_params: usize,
    warm_start: Option<&[f64]>,
    cfg: &OptimizerConfig,
    width: usize,
) -> OptimizeOutcome
where
    E: Evaluator,
    F: Fn() -> E + Sync,
{
    let nstarts = cfg.restarts.max(1);
    let mut results: Vec<Option<StartOutcome>> = (0..nstarts).map(|_| None).collect();

    if width <= 1 {
        // Serial sweep keeps the early-stop: later starts never run once a
        // start reaches the target cost.
        let mut eval = make_eval();
        for (s, slot) in results.iter_mut().enumerate() {
            let x = initial_point(s, num_params, warm_start, cfg);
            let out = run_start(&mut eval, x, num_params, cfg);
            let reached = out.cost <= cfg.target_cost;
            *slot = Some(out);
            if reached {
                break;
            }
        }
    } else {
        let cells: Vec<OnceLock<StartOutcome>> = (0..nstarts).map(|_| OnceLock::new()).collect();
        let next = AtomicUsize::new(0);
        crossbeam::thread::scope(|scope| {
            for _ in 0..width.min(nstarts) {
                scope.spawn(|_| {
                    let mut eval = make_eval();
                    loop {
                        let s = next.fetch_add(1, Ordering::Relaxed);
                        if s >= nstarts {
                            break;
                        }
                        let x = initial_point(s, num_params, warm_start, cfg);
                        let out = run_start(&mut eval, x, num_params, cfg);
                        let _ = cells[s].set(out);
                    }
                });
            }
        })
        .expect("optimizer worker panicked");
        for (slot, cell) in results.iter_mut().zip(cells) {
            *slot = cell.into_inner();
        }
    }

    // Deterministic reduction, equivalent to the serial sweep: only starts
    // up to (and including) the first one that reached the target count —
    // the serial loop would have stopped there — and ties on cost go to the
    // earliest start.
    let mut best: Option<(usize, &StartOutcome)> = None;
    let mut evals = 0;
    for (s, out) in results.iter().enumerate() {
        let Some(out) = out.as_ref() else { continue };
        evals += out.evals;
        if best.is_none_or(|(_, b)| out.cost < b.cost) {
            best = Some((s, out));
        }
        if out.cost <= cfg.target_cost {
            break;
        }
    }
    let (_, best) = best.expect("at least one optimizer start runs");

    // Instantiation cost: one metric per optimizer call would be noisy, so
    // only the aggregate gradient-evaluation count is published.
    qobs::metrics::counter("qsynth.instantiation_iters", evals as u64);
    OptimizeOutcome {
        params: best.params.clone(),
        cost: best.cost,
        evals,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Simple convex bowl with minimum at (1, −2, 3).
    fn bowl(x: &[f64], g: &mut [f64]) -> f64 {
        let target = [1.0, -2.0, 3.0];
        let mut c = 0.0;
        for i in 0..3 {
            let d = x[i] - target[i];
            c += d * d;
            g[i] = 2.0 * d;
        }
        c
    }

    #[test]
    fn minimizes_quadratic_bowl() {
        let cfg = OptimizerConfig {
            max_iters: 2000,
            learning_rate: 0.05,
            restarts: 1,
            target_cost: 1e-12,
            seed: 1,
            parallel: true,
        };
        let out = minimize(|| bowl, 3, None, &cfg);
        assert!(out.cost < 1e-6, "cost {}", out.cost);
        assert!((out.params[0] - 1.0).abs() < 1e-3);
        assert!((out.params[1] + 2.0).abs() < 1e-3);
        assert!((out.params[2] - 3.0).abs() < 1e-3);
    }

    #[test]
    fn warm_start_speeds_convergence() {
        let cfg = OptimizerConfig {
            max_iters: 20,
            learning_rate: 0.05,
            restarts: 1,
            target_cost: 1e-12,
            seed: 2,
            parallel: true,
        };
        let cold = minimize(|| bowl, 3, None, &cfg);
        let warm = minimize(|| bowl, 3, Some(&[1.0, -2.0, 3.0]), &cfg);
        assert!(warm.cost < cold.cost);
        assert!(warm.cost < 1e-10);
    }

    #[test]
    fn restarts_escape_bad_basins() {
        // Rastrigin-ish 1D with many local minima; global at 0.
        let nasty = |x: &[f64], g: &mut [f64]| {
            let v = x[0];
            g[0] = 2.0 * v + 6.0 * (2.0 * v).sin();
            v * v + 3.0 * (1.0 - (2.0 * v).cos())
        };
        let cfg = OptimizerConfig {
            max_iters: 500,
            learning_rate: 0.03,
            restarts: 8,
            target_cost: 1e-10,
            seed: 3,
            parallel: true,
        };
        let out = minimize(|| nasty, 1, Some(&[2.9]), &cfg);
        assert!(out.cost < 0.5, "stuck at {}", out.cost);
    }

    #[test]
    fn early_stop_respects_target() {
        let cfg = OptimizerConfig {
            max_iters: 100_000,
            learning_rate: 0.05,
            restarts: 1,
            target_cost: 1e-3,
            seed: 4,
            parallel: true,
        };
        let out = minimize(|| bowl, 3, None, &cfg);
        assert!(out.cost <= 1e-3);
        assert!(out.evals < 100_000, "should stop early, used {}", out.evals);
    }

    #[test]
    fn parallel_starts_match_serial_bitwise() {
        // The determinism contract: any pool width returns bit-identical
        // params, cost, and eval count to the width-1 serial sweep.
        let nasty = |x: &[f64], g: &mut [f64]| {
            let mut c = 0.0;
            for i in 0..x.len() {
                let v = x[i];
                g[i] = 2.0 * v + 6.0 * (2.0 * v).sin();
                c += v * v + 3.0 * (1.0 - (2.0 * v).cos());
            }
            c
        };
        for warm in [None, Some([2.9, -1.4, 0.3].as_slice())] {
            let cfg = OptimizerConfig {
                max_iters: 200,
                learning_rate: 0.03,
                restarts: 5,
                target_cost: 1e-10,
                seed: 7,
                parallel: true,
            };
            let serial = minimize_with_width(|| nasty, 3, warm, &cfg, 1);
            for width in [2, 4, 8] {
                let par = minimize_with_width(|| nasty, 3, warm, &cfg, width);
                assert_eq!(par.cost.to_bits(), serial.cost.to_bits(), "width {width}");
                assert_eq!(par.params, serial.params, "width {width}");
                assert_eq!(par.evals, serial.evals, "width {width}");
            }
        }
    }

    #[test]
    fn serial_early_stop_and_parallel_account_same_evals() {
        // A start that hits the target stops the serial sweep; the parallel
        // reduction must charge exactly the same starts.
        let cfg = OptimizerConfig {
            max_iters: 5000,
            learning_rate: 0.05,
            restarts: 4,
            target_cost: 1e-9,
            seed: 11,
            parallel: true,
        };
        let serial = minimize_with_width(|| bowl, 3, None, &cfg, 1);
        let par = minimize_with_width(|| bowl, 3, None, &cfg, 4);
        assert!(serial.cost <= cfg.target_cost);
        assert_eq!(par.evals, serial.evals);
        assert_eq!(par.params, serial.params);
    }
}
