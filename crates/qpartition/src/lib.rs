//! Circuit partitioning into small synthesizable blocks (paper Sec. 3.3).
//!
//! Synthesis cost scales exponentially with block width, so QUEST first
//! splits the circuit into blocks of at most `k` qubits (4 in the paper) and
//! synthesizes each block in isolation. Like the BQSKit *scan partitioner*
//! the paper uses, [`scan_partition`] makes a single front-to-back pass:
//! gates are absorbed into the open block while the union of touched qubits
//! stays within the size budget, and a new block opens otherwise. Because
//! gates are never reordered, the blocks are in topological order and the
//! circuit equals the in-order composition of its blocks.
//!
//! ```
//! use qcircuit::Circuit;
//! use qpartition::scan_partition;
//!
//! let mut c = Circuit::new(4);
//! c.h(0).cnot(0, 1).cnot(1, 2).cnot(2, 3);
//! let parts = scan_partition(&c, 3);
//! assert!(parts.blocks().iter().all(|b| b.qubits().len() <= 3));
//! // Reassembly preserves the computation.
//! assert!(parts.reassemble().unitary().approx_eq(&c.unitary(), 1e-10));
//! ```

#![deny(missing_docs)]

use qcircuit::{Circuit, Instruction};
use qmath::Matrix;

/// A contiguous group of instructions acting on at most `k` qubits.
///
/// The block stores its circuit over *local* qubit indices `0..width`; the
/// `qubits` list maps local index `i` to the global qubit `qubits[i]`
/// (sorted ascending).
#[derive(Clone, Debug, PartialEq)]
pub struct Block {
    qubits: Vec<usize>,
    circuit: Circuit,
}

impl Block {
    /// Global qubits the block acts on, ascending; local qubit `i`
    /// corresponds to `qubits()[i]`.
    pub fn qubits(&self) -> &[usize] {
        &self.qubits
    }

    /// The block's circuit over local qubit indices.
    pub fn circuit(&self) -> &Circuit {
        &self.circuit
    }

    /// Block width (number of qubits).
    pub fn width(&self) -> usize {
        self.qubits.len()
    }

    /// The block's unitary (local dimension `2^width`). This is the target
    /// QUEST's approximate synthesis minimizes against.
    pub fn unitary(&self) -> Matrix {
        self.circuit.unitary()
    }

    /// The block's circuit re-targeted onto the full register.
    pub fn remapped_to_full(&self, num_qubits: usize) -> Circuit {
        self.circuit.remapped(&self.qubits, num_qubits)
    }
}

/// A circuit expressed as an ordered sequence of blocks.
#[derive(Clone, Debug, PartialEq)]
pub struct PartitionedCircuit {
    num_qubits: usize,
    blocks: Vec<Block>,
}

impl PartitionedCircuit {
    /// Width of the original circuit.
    pub fn num_qubits(&self) -> usize {
        self.num_qubits
    }

    /// The blocks in topological (program) order.
    pub fn blocks(&self) -> &[Block] {
        &self.blocks
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.blocks.len()
    }

    /// Returns `true` when there are no blocks (empty input circuit).
    pub fn is_empty(&self) -> bool {
        self.blocks.is_empty()
    }

    /// Rebuilds the full circuit by composing the blocks in order.
    pub fn reassemble(&self) -> Circuit {
        let mut c = Circuit::new(self.num_qubits);
        for b in &self.blocks {
            c.extend_from(&b.remapped_to_full(self.num_qubits));
        }
        c
    }

    /// Rebuilds the full circuit with block `i`'s body replaced by
    /// `replacements[i]` (e.g. a synthesized approximation). Each
    /// replacement must have the corresponding block's width.
    ///
    /// # Panics
    ///
    /// Panics if `replacements.len() != self.len()` or widths mismatch.
    pub fn reassemble_with(&self, replacements: &[&Circuit]) -> Circuit {
        assert_eq!(
            replacements.len(),
            self.blocks.len(),
            "need one replacement per block"
        );
        let mut c = Circuit::new(self.num_qubits);
        for (b, r) in self.blocks.iter().zip(replacements) {
            assert_eq!(
                r.num_qubits(),
                b.width(),
                "replacement width mismatch for block on {:?}",
                b.qubits
            );
            c.extend_from(&r.remapped(&b.qubits, self.num_qubits));
        }
        c
    }
}

/// Partitions `circuit` into blocks of at most `max_block_size` qubits with
/// a single front-to-back scan.
///
/// # Panics
///
/// Panics if `max_block_size < 2` (two-qubit gates must fit in a block).
pub fn scan_partition(circuit: &Circuit, max_block_size: usize) -> PartitionedCircuit {
    scan_partition_with(circuit, max_block_size, None)
}

/// Like [`scan_partition`], but additionally closing a block once it holds
/// `max_block_gates` instructions.
///
/// A pure qubit-width budget puts an arbitrarily deep circuit on few qubits
/// into one giant block; a gate cap time-slices it instead, which keeps
/// per-block synthesis tractable and — for Trotterized evolutions — makes
/// consecutive timestep circuits share identical blocks (synthesis-cache
/// hits).
///
/// # Panics
///
/// Panics if `max_block_size < 2` or `max_block_gates == Some(0)`.
pub fn scan_partition_with(
    circuit: &Circuit,
    max_block_size: usize,
    max_block_gates: Option<usize>,
) -> PartitionedCircuit {
    assert!(
        max_block_size >= 2,
        "blocks must hold at least 2 qubits to contain CNOTs"
    );
    assert!(max_block_gates != Some(0), "gate budget must be at least 1");
    let _span = qobs::span!(
        "qpartition.scan",
        qubits = circuit.num_qubits(),
        gates = circuit.len(),
        max_block_size = max_block_size,
    );
    let mut blocks: Vec<Block> = Vec::new();
    let mut open_qubits: Vec<usize> = Vec::new();
    let mut open_insts: Vec<Instruction> = Vec::new();

    let flush = |qubits: &mut Vec<usize>, insts: &mut Vec<Instruction>, blocks: &mut Vec<Block>| {
        if insts.is_empty() {
            return;
        }
        qubits.sort_unstable();
        let local_index = |q: usize| qubits.iter().position(|&g| g == q).unwrap();
        let mut local = Circuit::new(qubits.len());
        for inst in insts.drain(..) {
            let lq: Vec<usize> = inst.qubits.iter().map(|&q| local_index(q)).collect();
            local.push(inst.gate, &lq);
        }
        blocks.push(Block {
            qubits: std::mem::take(qubits),
            circuit: local,
        });
    };

    for inst in circuit.iter() {
        let new_qubits: Vec<usize> = inst
            .qubits
            .iter()
            .copied()
            .filter(|q| !open_qubits.contains(q))
            .collect();
        let over_width = open_qubits.len() + new_qubits.len() > max_block_size;
        let over_gates = max_block_gates.is_some_and(|cap| open_insts.len() >= cap);
        if over_width || over_gates {
            flush(&mut open_qubits, &mut open_insts, &mut blocks);
        }
        for q in inst.qubits.iter() {
            if !open_qubits.contains(q) {
                open_qubits.push(*q);
            }
        }
        open_insts.push(inst.clone());
    }
    flush(&mut open_qubits, &mut open_insts, &mut blocks);

    qobs::metrics::counter("qpartition.blocks", blocks.len() as u64);
    for b in &blocks {
        #[allow(clippy::cast_precision_loss)]
        {
            qobs::metrics::histogram("qpartition.block_width", b.width() as f64);
            qobs::metrics::histogram("qpartition.block_gates", b.circuit().len() as f64);
        }
    }
    PartitionedCircuit {
        num_qubits: circuit.num_qubits(),
        blocks,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line_circuit(n: usize) -> Circuit {
        let mut c = Circuit::new(n);
        c.h(0);
        for q in 0..n - 1 {
            c.cnot(q, q + 1);
            c.rz(q + 1, 0.1 * q as f64);
        }
        c
    }

    #[test]
    fn blocks_respect_size_budget() {
        for k in 2..=4 {
            let parts = scan_partition(&line_circuit(6), k);
            for b in parts.blocks() {
                assert!(b.width() <= k, "block {:?} too wide for k={k}", b.qubits());
            }
        }
    }

    #[test]
    fn reassembly_is_exact() {
        let c = line_circuit(5);
        for k in 2..=4 {
            let parts = scan_partition(&c, k);
            assert!(
                parts.reassemble().unitary().approx_eq(&c.unitary(), 1e-9),
                "k={k} reassembly differs"
            );
        }
    }

    #[test]
    fn instruction_count_is_preserved() {
        let c = line_circuit(6);
        let parts = scan_partition(&c, 3);
        let total: usize = parts.blocks().iter().map(|b| b.circuit().len()).sum();
        assert_eq!(total, c.len());
    }

    #[test]
    fn fully_local_circuit_fits_one_block_per_size() {
        // Circuit touching only 2 qubits fits into a single block at k>=2.
        let mut c = Circuit::new(4);
        c.h(1).cnot(1, 2).rz(2, 0.5).cnot(1, 2);
        let parts = scan_partition(&c, 4);
        assert_eq!(parts.len(), 1);
        assert_eq!(parts.blocks()[0].qubits(), &[1, 2]);
    }

    #[test]
    fn wider_budget_gives_fewer_blocks() {
        let c = line_circuit(8);
        let small = scan_partition(&c, 2).len();
        let large = scan_partition(&c, 4).len();
        assert!(large < small, "k=4 ({large}) !< k=2 ({small})");
    }

    #[test]
    fn block_local_indices_are_valid() {
        let c = line_circuit(6);
        let parts = scan_partition(&c, 3);
        for b in parts.blocks() {
            for inst in b.circuit().iter() {
                for &q in &inst.qubits {
                    assert!(q < b.width());
                }
            }
            // Qubit list sorted ascending.
            assert!(b.qubits().windows(2).all(|w| w[0] < w[1]));
        }
    }

    #[test]
    fn reassemble_with_identity_replacements_is_noop() {
        let c = line_circuit(5);
        let parts = scan_partition(&c, 3);
        let bodies: Vec<Circuit> = parts.blocks().iter().map(|b| b.circuit().clone()).collect();
        let refs: Vec<&Circuit> = bodies.iter().collect();
        let re = parts.reassemble_with(&refs);
        assert!(re.unitary().approx_eq(&c.unitary(), 1e-9));
    }

    #[test]
    fn empty_circuit_yields_no_blocks() {
        let parts = scan_partition(&Circuit::new(3), 3);
        assert!(parts.is_empty());
        assert_eq!(parts.reassemble().len(), 0);
    }

    #[test]
    fn gate_cap_time_slices_deep_circuits() {
        // A deep 3-qubit circuit: width-only partitioning gives one block;
        // a gate cap slices it into several identical-shape blocks.
        let mut c = Circuit::new(3);
        for _ in 0..6 {
            c.cnot(0, 1)
                .rz(1, 0.2)
                .cnot(0, 1)
                .cnot(1, 2)
                .rz(2, 0.2)
                .cnot(1, 2);
        }
        assert_eq!(scan_partition(&c, 3).len(), 1);
        let sliced = scan_partition_with(&c, 3, Some(12));
        assert!(sliced.len() >= 3, "got {} blocks", sliced.len());
        for b in sliced.blocks() {
            assert!(b.circuit().len() <= 12);
        }
        assert!(sliced.reassemble().unitary().approx_eq(&c.unitary(), 1e-9));
    }

    #[test]
    fn gate_cap_produces_repeated_blocks() {
        // Trotter repetition → identical block bodies (the cache premise).
        let mut c = Circuit::new(2);
        for _ in 0..4 {
            c.cnot(0, 1).rz(1, 0.5).cnot(0, 1);
        }
        let parts = scan_partition_with(&c, 2, Some(3));
        assert_eq!(parts.len(), 4);
        let first = parts.blocks()[0].circuit().clone();
        for b in parts.blocks() {
            assert_eq!(b.circuit(), &first);
        }
    }

    #[test]
    #[should_panic(expected = "gate budget")]
    fn zero_gate_cap_panics() {
        let _ = scan_partition_with(&Circuit::new(2), 2, Some(0));
    }

    #[test]
    #[should_panic(expected = "at least 2 qubits")]
    fn block_size_one_panics() {
        let _ = scan_partition(&Circuit::new(2), 1);
    }

    #[test]
    fn benchmark_suite_partitions_cleanly() {
        for b in qbench::suite() {
            let parts = scan_partition(&b.circuit, 4);
            assert!(!parts.is_empty(), "{} produced no blocks", b.name);
            let total: usize = parts.blocks().iter().map(|bl| bl.circuit().len()).sum();
            assert_eq!(total, b.circuit.len(), "{} lost instructions", b.name);
        }
    }

    #[test]
    fn suite_reassembly_matches_statevector() {
        // Cheaper than unitary comparison for wider circuits.
        for b in qbench::suite()
            .into_iter()
            .filter(|b| b.circuit.num_qubits() <= 6)
        {
            let parts = scan_partition(&b.circuit, 4);
            let orig = qsim::Statevector::run(&b.circuit);
            let re = qsim::Statevector::run(&parts.reassemble());
            let t = qsim::tvd(&orig.probabilities(), &re.probabilities());
            assert!(t < 1e-9, "{}: tvd {t}", b.name);
        }
    }
}
