//! Dual annealing over discrete index spaces.
//!
//! QUEST selects full-circuit approximations by minimizing Algorithm 1's
//! objective with SciPy's `dual_annealing` (its reference \[17\]/\[36\]).
//! This crate reimplements the core of that optimizer — *generalized
//! simulated annealing* (GSA, Tsallis & Stariolo): a distorted-Cauchy
//! visiting distribution with index `q_v = 2.62`, Tsallis acceptance with
//! `q_a = −5`, the `t(k) = t₀·(2^{q_v−1} − 1)/((1+k)^{q_v−1} − 1)`
//! temperature schedule, and restarts when the temperature collapses.
//!
//! SciPy's optional gradient-based local-search polish is intentionally
//! omitted: QUEST's search space is an integer lattice (one approximation
//! index per circuit block) on which the objective is piecewise constant, so
//! local search cannot improve anything. The continuous GSA state in
//! `[0, 1)^d` is decoded to indices by scaling (matching how the paper's
//! code hands integer choices to SciPy).
//!
//! ```
//! use qanneal::{minimize_discrete, AnnealConfig};
//!
//! // Find the index vector minimizing the distance to (3, 1, 4).
//! let f = |idx: &[usize]| {
//!     let target = [3.0, 1.0, 4.0];
//!     idx.iter().zip(target).map(|(&i, t)| (i as f64 - t).powi(2)).sum()
//! };
//! let out = minimize_discrete(&f, &[8, 8, 8], &AnnealConfig::default());
//! assert_eq!(out.best, vec![3, 1, 4]);
//! ```

#![deny(missing_docs)]

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::cell::Cell;
use std::time::{Duration, Instant};

/// Configuration of the annealer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct AnnealConfig {
    /// Total objective evaluations budget.
    pub max_evals: usize,
    /// Wall-clock watchdog: when set, the run stops at the next evaluation
    /// after the deadline and returns its best-so-far point with
    /// `timed_out` set. `None` ⇒ the eval budget alone bounds the run, and
    /// the result stays deterministic per seed.
    pub deadline: Option<Duration>,
    /// Initial temperature `t₀` (SciPy default 5230).
    pub initial_temp: f64,
    /// Restart when `t` falls below `initial_temp × this` (SciPy: 2e-5).
    pub restart_temp_ratio: f64,
    /// Visiting-distribution index `q_v` (SciPy: 2.62).
    pub visit: f64,
    /// Acceptance index `q_a` (SciPy: −5.0).
    pub accept: f64,
    /// RNG seed.
    pub seed: u64,
}

impl Default for AnnealConfig {
    fn default() -> Self {
        AnnealConfig {
            max_evals: 4000,
            deadline: None,
            initial_temp: 5230.0,
            restart_temp_ratio: 2e-5,
            visit: 2.62,
            accept: -5.0,
            seed: 0,
        }
    }
}

impl AnnealConfig {
    /// Returns a copy with a different seed (used to draw independent
    /// annealing runs for QUEST's repeated sample selection).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// The outcome of an annealing run.
#[derive(Clone, Debug, PartialEq)]
pub struct AnnealOutcome {
    /// Best index vector found.
    pub best: Vec<usize>,
    /// Objective value at `best`.
    pub best_value: f64,
    /// Objective evaluations spent.
    pub evals: usize,
    /// Uphill-or-downhill moves the Tsallis criterion accepted.
    pub accepted: usize,
    /// Temperature-collapse restarts taken.
    pub restarts: usize,
    /// The [`AnnealConfig::deadline`] watchdog fired; `best` is the
    /// best-so-far point at that moment rather than a full-budget result.
    pub timed_out: bool,
}

impl AnnealOutcome {
    /// Fraction of proposed moves accepted (0 when nothing was proposed).
    pub fn acceptance_rate(&self) -> f64 {
        if self.evals == 0 {
            0.0
        } else {
            #[allow(clippy::cast_precision_loss)]
            {
                self.accepted as f64 / self.evals as f64
            }
        }
    }
}

/// Minimizes `f` over the integer lattice `{0..arity[0]} × … ×
/// {0..arity[d−1]}`.
///
/// Deterministic for a fixed config.
///
/// # Panics
///
/// Panics if `arity` is empty or contains a zero.
pub fn minimize_discrete(
    f: &dyn Fn(&[usize]) -> f64,
    arity: &[usize],
    cfg: &AnnealConfig,
) -> AnnealOutcome {
    assert!(!arity.is_empty(), "need at least one dimension");
    assert!(
        arity.iter().all(|&a| a > 0),
        "every dimension needs choices"
    );
    let decode = |x: &[f64]| -> Vec<usize> {
        x.iter()
            .zip(arity)
            // xi ∈ [0, 1] and arities are small menu sizes, so the float→index
            // cast is in-range; truncation toward zero is the intended floor.
            .map(|(&xi, &a)| {
                #[allow(clippy::cast_possible_truncation, clippy::cast_sign_loss)]
                let idx = (xi * a as f64) as usize;
                idx.min(a - 1)
            })
            .collect()
    };
    let _span = qobs::span!("qanneal.minimize_discrete", dims = arity.len());
    let run = anneal01(&|x| f(&decode(x)), arity.len(), cfg);
    record_run(&run);
    AnnealOutcome {
        best: decode(&run.best),
        best_value: run.best_value,
        evals: run.evals,
        accepted: run.accepted,
        restarts: run.restarts,
        timed_out: run.timed_out,
    }
}

/// The outcome of a continuous annealing run.
#[derive(Clone, Debug, PartialEq)]
pub struct ContinuousOutcome {
    /// Best point found.
    pub best: Vec<f64>,
    /// Objective value at `best`.
    pub best_value: f64,
    /// Objective evaluations spent.
    pub evals: usize,
    /// The [`AnnealConfig::deadline`] watchdog fired; `best` is the
    /// best-so-far point at that moment.
    pub timed_out: bool,
}

/// Minimizes `f` over the box `Πᵢ [bounds[i].0, bounds[i].1]` — the
/// continuous form SciPy's `dual_annealing` exposes. (QUEST itself anneals
/// over the discrete block-choice lattice via [`minimize_discrete`]; this
/// completes the substrate and is used by its own tests.)
///
/// # Panics
///
/// Panics if `bounds` is empty or any interval is degenerate/inverted.
pub fn minimize_continuous(
    f: &dyn Fn(&[f64]) -> f64,
    bounds: &[(f64, f64)],
    cfg: &AnnealConfig,
) -> ContinuousOutcome {
    assert!(!bounds.is_empty(), "need at least one dimension");
    assert!(
        bounds
            .iter()
            .all(|&(lo, hi)| hi > lo && lo.is_finite() && hi.is_finite()),
        "bounds must be finite non-degenerate intervals"
    );
    let decode = |x: &[f64]| -> Vec<f64> {
        x.iter()
            .zip(bounds)
            .map(|(&xi, &(lo, hi))| lo + xi * (hi - lo))
            .collect()
    };
    let _span = qobs::span!("qanneal.minimize_continuous", dims = bounds.len());
    let run = anneal01(&|x| f(&decode(x)), bounds.len(), cfg);
    record_run(&run);
    ContinuousOutcome {
        best: decode(&run.best),
        best_value: run.best_value,
        evals: run.evals,
        timed_out: run.timed_out,
    }
}

/// Raw engine statistics shared by both front ends.
struct EngineRun {
    best: Vec<f64>,
    best_value: f64,
    evals: usize,
    accepted: usize,
    restarts: usize,
    final_temperature: f64,
    timed_out: bool,
    nonfinite_evals: usize,
}

/// Publishes one engine run to the metrics registry (no-op when metrics
/// collection is off; see DESIGN.md's metric-name table).
fn record_run(run: &EngineRun) {
    qobs::metrics::counter("qanneal.evals", run.evals as u64);
    qobs::metrics::counter("qanneal.accepted", run.accepted as u64);
    qobs::metrics::counter("qanneal.restarts", run.restarts as u64);
    qobs::metrics::counter("qanneal.runs", 1);
    #[allow(clippy::cast_precision_loss)]
    let rate = if run.evals == 0 {
        0.0
    } else {
        run.accepted as f64 / run.evals as f64
    };
    qobs::metrics::histogram("qanneal.acceptance_rate", rate);
    qobs::metrics::gauge("qanneal.final_temperature", run.final_temperature);
    qobs::metrics::histogram("qanneal.best_value", run.best_value);
    qobs::metrics::counter("qanneal.timeouts", u64::from(run.timed_out));
    qobs::metrics::counter("qanneal.nonfinite_evals", run.nonfinite_evals as u64);
}

/// The GSA engine over the unit box `[0, 1)^d` with periodic boundaries.
fn anneal01(f: &dyn Fn(&[f64]) -> f64, d: usize, cfg: &AnnealConfig) -> EngineRun {
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let mut evals = 0usize;
    let mut accepted = 0usize;
    let mut restarts = 0usize;
    let mut last_temperature = cfg.initial_temp;
    let mut best: Vec<f64> = vec![0.0; d];
    let mut best_value = f64::INFINITY;
    let started = Instant::now();
    let mut timed_out = false;
    // Non-finite objective values would jam the acceptance chain (a NaN
    // `e_cur` rejects every later move); sanitizing them to +∞ keeps the
    // walk alive — any finite move is then strictly downhill and accepted.
    let nonfinite = Cell::new(0usize);
    let eval_sane = |x: &[f64]| -> f64 {
        #[allow(unused_mut)]
        let mut v = f(x);
        qfault::inject!("qanneal.objective", nan, v);
        if v.is_finite() {
            v
        } else {
            nonfinite.set(nonfinite.get() + 1);
            f64::INFINITY
        }
    };
    let expired = |timed_out: &mut bool| -> bool {
        if cfg.deadline.is_some_and(|dl| started.elapsed() >= dl) {
            *timed_out = true;
            true
        } else {
            false
        }
    };

    'outer: loop {
        // (Re)start from a fresh random point.
        let mut x: Vec<f64> = (0..d).map(|_| rng.random::<f64>()).collect();
        let mut e_cur = eval_sane(&x);
        evals += 1;
        if e_cur < best_value {
            best_value = e_cur;
            best.copy_from_slice(&x);
        }

        let mut k = 0usize;
        loop {
            let t = temperature(cfg.initial_temp, cfg.visit, k);
            if t < cfg.initial_temp * cfg.restart_temp_ratio {
                // Temperature collapsed → restart. The objective trace and
                // cooling schedule are observable via these events.
                restarts += 1;
                qobs::event!(
                    "qanneal.restart",
                    evals = evals,
                    temperature = t,
                    best_value = best_value,
                );
                break;
            }
            last_temperature = t;
            // One annealing "cycle": a global all-dimensions move followed
            // by d single-dimension moves (SciPy's strategy chain).
            for step in 0..=d {
                qfault::inject!("qanneal.step", delay);
                if evals >= cfg.max_evals || expired(&mut timed_out) {
                    break 'outer;
                }
                let mut cand = x.clone();
                if step == 0 {
                    for xi in cand.iter_mut() {
                        *xi = wrap01(*xi + visit_step(t, cfg.visit, &mut rng));
                    }
                } else {
                    let j = step - 1;
                    cand[j] = wrap01(cand[j] + visit_step(t, cfg.visit, &mut rng));
                }
                let e_new = eval_sane(&cand);
                evals += 1;
                if e_new < best_value {
                    best_value = e_new;
                    best.copy_from_slice(&cand);
                    qobs::event!(
                        "qanneal.improved",
                        evals = evals,
                        value = e_new,
                        temperature = t,
                    );
                }
                let t_accept = t / (k + 1) as f64;
                if tsallis_accept(e_new - e_cur, t_accept, cfg.accept, &mut rng) {
                    accepted += 1;
                    x = cand;
                    e_cur = e_new;
                }
            }
            k += 1;
        }
        if evals >= cfg.max_evals || expired(&mut timed_out) {
            break;
        }
    }
    if timed_out {
        qobs::event!("qanneal.watchdog", evals = evals, best_value = best_value,);
    }
    EngineRun {
        best,
        best_value,
        evals,
        accepted,
        restarts,
        final_temperature: last_temperature,
        timed_out,
        nonfinite_evals: nonfinite.get(),
    }
}

/// GSA temperature schedule `t(k) = t₀·(2^{q_v−1} − 1)/((1+k)^{q_v−1} − 1)`.
fn temperature(t0: f64, qv: f64, k: usize) -> f64 {
    let e = qv - 1.0;
    t0 * (f64::powf(2.0, e) - 1.0) / (f64::powf((k + 2) as f64, e) - 1.0)
}

/// Draws one step from the GSA visiting distribution at temperature `t`
/// (Tsallis–Stariolo distorted Cauchy-Lorentz), scaled into the unit box.
fn visit_step(t: f64, qv: f64, rng: &mut StdRng) -> f64 {
    let factor2 = f64::exp((4.0 - qv) * (qv - 1.0).ln());
    let factor3 = f64::exp((2.0 - qv) * std::f64::consts::LN_2 / (qv - 1.0));
    let factor4 = std::f64::consts::PI.sqrt() * factor2 / (factor3 * (3.0 - qv));
    let factor5 = 1.0 / (qv - 1.0) - 0.5;
    let d1 = 2.0 - factor5;
    let factor6 = std::f64::consts::PI * (1.0 - factor5)
        / (std::f64::consts::PI * (1.0 - factor5)).sin()
        / f64::exp(ln_gamma(d1));
    let sigmax = f64::exp(-(qv - 1.0) * (factor6 / factor4).ln() / (3.0 - qv))
        * f64::powf(t, -(qv - 1.0) / (3.0 - qv));
    let x = sigmax * gauss(rng);
    let y = gauss(rng);
    let den = f64::exp((qv - 1.0) * y.abs().ln() / (3.0 - qv));
    let step = x / den;
    // Keep steps bounded so a single draw cannot overflow wrap01's loop.
    step.clamp(-1e8, 1e8) * 1e-1
}

/// Tsallis generalized acceptance probability.
fn tsallis_accept(delta: f64, t_accept: f64, qa: f64, rng: &mut StdRng) -> bool {
    if delta < 0.0 {
        return true;
    }
    let pqv = 1.0 - (1.0 - qa) * delta / t_accept.max(1e-300);
    if pqv <= 0.0 {
        false
    } else {
        let p = f64::exp(pqv.ln() / (1.0 - qa));
        rng.random::<f64>() <= p
    }
}

/// Standard normal via Box–Muller.
fn gauss(rng: &mut StdRng) -> f64 {
    let u1: f64 = 1.0 - rng.random::<f64>();
    let u2: f64 = rng.random::<f64>();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Wraps a coordinate into `[0, 1)` (periodic boundary).
fn wrap01(x: f64) -> f64 {
    let w = x - x.floor();
    if w >= 1.0 {
        0.0
    } else {
        w
    }
}

/// Natural log of the Gamma function (Lanczos approximation, g=7, n=9).
fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 8] = [
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        let pi = std::f64::consts::PI;
        (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x)
    } else {
        let x = x - 1.0;
        // Published Lanczos (g = 7) base coefficient; quoted digits kept verbatim.
        #[allow(clippy::excessive_precision)]
        let mut a = 0.999_999_999_999_809_93;
        for (i, c) in COEFFS.iter().enumerate() {
            a += c / (x + (i + 1) as f64);
        }
        let t = x + 7.5;
        0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_known_values() {
        // Γ(1) = Γ(2) = 1, Γ(5) = 24, Γ(1/2) = √π.
        assert!(ln_gamma(1.0).abs() < 1e-10);
        assert!(ln_gamma(2.0).abs() < 1e-10);
        assert!((ln_gamma(5.0) - 24.0f64.ln()).abs() < 1e-10);
        assert!((ln_gamma(0.5) - std::f64::consts::PI.sqrt().ln()).abs() < 1e-10);
    }

    #[test]
    fn finds_quadratic_optimum() {
        let f = |idx: &[usize]| {
            let target = [7.0, 2.0, 9.0, 0.0];
            idx.iter()
                .zip(target)
                .map(|(&i, t)| (i as f64 - t).powi(2))
                .sum()
        };
        let out = minimize_discrete(&f, &[10, 10, 10, 10], &AnnealConfig::default());
        assert_eq!(out.best, vec![7, 2, 9, 0], "value {}", out.best_value);
    }

    #[test]
    fn escapes_deceptive_local_minima() {
        // Global optimum at index 19 behind a wall of local minima.
        let f = |idx: &[usize]| {
            let x = idx[0] as f64;
            // Oscillatory + slope: local minima every 4 steps, global at 19.
            (20.0 - x) * 0.5 + 2.0 * ((x * std::f64::consts::PI / 2.0).sin()).abs()
        };
        let out = minimize_discrete(&f, &[20], &AnnealConfig::default().with_seed(3));
        assert!(
            out.best[0] >= 18,
            "stuck at {} (value {})",
            out.best[0],
            out.best_value
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let f = |idx: &[usize]| idx.iter().map(|&i| i as f64).sum::<f64>();
        let cfg = AnnealConfig::default().with_seed(9);
        let a = minimize_discrete(&f, &[5, 5, 5], &cfg);
        let b = minimize_discrete(&f, &[5, 5, 5], &cfg);
        assert_eq!(a, b);
    }

    #[test]
    fn respects_eval_budget() {
        let f = |_: &[usize]| 1.0;
        let cfg = AnnealConfig {
            max_evals: 137,
            ..AnnealConfig::default()
        };
        let out = minimize_discrete(&f, &[4, 4], &cfg);
        assert!(out.evals <= 137);
    }

    #[test]
    fn single_choice_dimensions_work() {
        let f = |idx: &[usize]| idx[1] as f64;
        let out = minimize_discrete(&f, &[1, 6], &AnnealConfig::default());
        assert_eq!(out.best, vec![0, 0]);
    }

    #[test]
    fn temperature_is_decreasing() {
        let t0 = 5230.0;
        let mut prev = f64::INFINITY;
        for k in 0..100 {
            let t = temperature(t0, 2.62, k);
            assert!(t < prev);
            assert!(t > 0.0);
            prev = t;
        }
    }

    #[test]
    fn tsallis_always_accepts_improvement() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(tsallis_accept(-0.5, 1.0, -5.0, &mut rng));
        }
    }

    #[test]
    fn tsallis_rejects_large_uphill_at_low_temperature() {
        let mut rng = StdRng::seed_from_u64(2);
        let accepted = (0..1000)
            .filter(|_| tsallis_accept(10.0, 1e-6, -5.0, &mut rng))
            .count();
        assert_eq!(accepted, 0);
    }

    #[test]
    fn zero_deadline_returns_best_so_far() {
        let f = |idx: &[usize]| idx.iter().map(|&i| i as f64).sum::<f64>();
        let cfg = AnnealConfig {
            deadline: Some(Duration::ZERO),
            ..AnnealConfig::default()
        };
        let out = minimize_discrete(&f, &[4, 4], &cfg);
        assert!(out.timed_out);
        assert_eq!(out.best.len(), 2, "best-so-far point still returned");
        // The watchdog fires on the first boundary check, after at most
        // the initial evaluation.
        assert!(out.evals <= 1, "evals {}", out.evals);
    }

    #[test]
    fn non_finite_objective_is_sanitized() {
        // NaN on a spike, finite elsewhere: the chain must keep moving and
        // settle on a finite optimum instead of jamming on the NaN.
        let f = |idx: &[usize]| {
            if idx[0] == 2 {
                f64::NAN
            } else {
                (idx[0] as f64 - 5.0).powi(2)
            }
        };
        let out = minimize_discrete(&f, &[8], &AnnealConfig::default().with_seed(4));
        assert_eq!(out.best, vec![5], "value {}", out.best_value);
        assert!(out.best_value.is_finite());
        assert!(!out.timed_out);
    }

    #[test]
    fn all_nan_objective_still_terminates() {
        let cfg = AnnealConfig {
            max_evals: 300,
            ..AnnealConfig::default()
        };
        let out = minimize_discrete(&|_| f64::NAN, &[4, 4], &cfg);
        assert!(out.best_value.is_infinite(), "sanitized to +inf");
        assert_eq!(out.best.len(), 2);
        assert!(out.evals <= 300);
    }

    #[test]
    #[should_panic(expected = "every dimension needs choices")]
    fn zero_arity_panics() {
        let _ = minimize_discrete(&|_| 0.0, &[3, 0], &AnnealConfig::default());
    }

    #[test]
    fn continuous_minimizes_shifted_sphere() {
        let f = |x: &[f64]| (x[0] - 1.5).powi(2) + (x[1] + 0.5).powi(2);
        let cfg = AnnealConfig {
            max_evals: 8000,
            ..AnnealConfig::default()
        };
        let out = minimize_continuous(&f, &[(-4.0, 4.0), (-4.0, 4.0)], &cfg);
        assert!(out.best_value < 0.01, "value {}", out.best_value);
        assert!((out.best[0] - 1.5).abs() < 0.15);
        assert!((out.best[1] + 0.5).abs() < 0.15);
    }

    #[test]
    fn continuous_escapes_rastrigin_traps() {
        // 1-D Rastrigin: global minimum 0 at x = 0 with many local minima.
        let f = |x: &[f64]| {
            let v = x[0];
            10.0 + v * v - 10.0 * (2.0 * std::f64::consts::PI * v).cos()
        };
        let cfg = AnnealConfig {
            max_evals: 8000,
            seed: 5,
            ..AnnealConfig::default()
        };
        let out = minimize_continuous(&f, &[(-5.12, 5.12)], &cfg);
        assert!(out.best_value < 1.0, "stuck at {}", out.best_value);
    }

    #[test]
    fn continuous_stays_in_bounds() {
        let f = |x: &[f64]| -x[0]; // minimized at the upper bound
        let out = minimize_continuous(&f, &[(2.0, 3.0)], &AnnealConfig::default());
        assert!((2.0..=3.0).contains(&out.best[0]));
        assert!(
            out.best[0] > 2.9,
            "should push to the boundary: {}",
            out.best[0]
        );
    }

    #[test]
    #[should_panic(expected = "non-degenerate")]
    fn inverted_bounds_panic() {
        let _ = minimize_continuous(&|_| 0.0, &[(1.0, 1.0)], &AnnealConfig::default());
    }
}
