//! Cross-simulator validation: the scalable trajectory simulator against
//! the exact density-matrix channel, over benchmark-shaped circuits and
//! noise levels, plus the readout-mitigation loop.

use qcircuit::Circuit;
use qsim::mitigation::ReadoutCalibration;
use qsim::{noise, DensityMatrix, NoiseModel, Statevector};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn trotter_chain(n: usize, steps: usize) -> Circuit {
    let mut c = Circuit::new(n);
    c.h(0);
    for _ in 0..steps {
        for q in 0..n - 1 {
            c.cnot(q, q + 1).rz(q + 1, 0.3).cnot(q, q + 1);
        }
        for q in 0..n {
            c.rx(q, 0.2);
        }
    }
    c
}

#[test]
fn trajectory_matches_exact_channel_across_noise_levels() {
    let circuit = trotter_chain(3, 2);
    let mut rng = StdRng::seed_from_u64(41);
    for p in [0.002, 0.01, 0.05] {
        let model = NoiseModel::pauli(p);
        let exact = DensityMatrix::run_noisy(&circuit, &model).probabilities();
        let sampled = noise::run_noisy(&circuit, &model, 60_000, 3000, &mut rng).probabilities();
        let d = qsim::tvd(&exact, &sampled);
        assert!(d < 0.03, "p={p}: trajectory vs exact TVD {d}");
    }
}

#[test]
fn exact_channel_error_grows_with_depth() {
    // Density-matrix confirmation of the premise behind QUEST: more noisy
    // gates → larger deviation from the ideal output.
    let model = NoiseModel::pauli(0.02);
    let mut prev = 0.0;
    for steps in [1usize, 3, 6] {
        let circuit = trotter_chain(3, steps);
        let ideal = Statevector::run(&circuit).probabilities();
        let noisy = DensityMatrix::run_noisy(&circuit, &model).probabilities();
        let d = qsim::tvd(&ideal, &noisy);
        assert!(
            d >= prev - 0.01,
            "deeper circuit should not be cleaner: {d} after {prev}"
        );
        prev = d;
    }
    assert!(prev > 0.05, "deep circuit barely noisy: {prev}");
}

#[test]
fn purity_decreases_monotonically_with_noise_level() {
    let circuit = trotter_chain(3, 2);
    let mut prev = 1.1;
    for p in [0.0, 0.01, 0.05, 0.2] {
        let dm = DensityMatrix::run_noisy(&circuit, &NoiseModel::pauli(p));
        let purity = dm.purity();
        assert!(purity < prev + 1e-9, "purity rose with noise: {purity}");
        prev = purity;
    }
}

#[test]
fn mitigation_composes_with_gate_noise() {
    // Mitigation undoes the SPAM share of the error but not the gate share.
    let circuit = trotter_chain(3, 2);
    let truth = Statevector::run(&circuit).probabilities();
    let model = NoiseModel {
        p1: 0.001,
        p2: 0.01,
        spam: 0.05,
    };
    let mut rng = StdRng::seed_from_u64(42);
    let cal = ReadoutCalibration::calibrate(3, &model, 40_000, &mut rng);
    let raw = noise::run_noisy(&circuit, &model, 40_000, 200, &mut rng).probabilities();
    let mitigated = cal.mitigate(&raw);
    let tvd_raw = qsim::tvd(&truth, &raw);
    let tvd_mit = qsim::tvd(&truth, &mitigated);
    assert!(
        tvd_mit < tvd_raw,
        "mitigation should help: {tvd_mit} !< {tvd_raw}"
    );
    // Gate noise remains: mitigation cannot reach the ideal distribution.
    assert!(tvd_mit > 0.005, "mitigated result suspiciously perfect");
}

#[test]
fn spam_free_model_needs_no_mitigation() {
    let circuit = trotter_chain(3, 1);
    let model = NoiseModel::pauli(0.01); // no SPAM term
    let mut rng = StdRng::seed_from_u64(43);
    let cal = ReadoutCalibration::calibrate(3, &model, 40_000, &mut rng);
    let raw = noise::run_noisy(&circuit, &model, 40_000, 200, &mut rng).probabilities();
    let mitigated = cal.mitigate(&raw);
    // Near-identity calibration → mitigation changes little.
    assert!(qsim::tvd(&raw, &mitigated) < 0.02);
}
