#!/usr/bin/env bash
# Regenerates every table/figure of the paper into results/.
# Usage: scripts/run_all_figures.sh [filter...]
set -u
cd "$(dirname "$0")/.."
mkdir -p results
targets=(table1 fig01 fig04 fig07 fig08 fig09 fig10 fig11 fig12 fig13 fig14 fig15 fig16 ablation)
if [ "$#" -gt 0 ]; then
    targets=("$@")
fi
cargo build --release -p bench || exit 1
for t in "${targets[@]}"; do
    echo "=== $t ==="
    cargo run --quiet --release -p bench --bin "$t" 2>&1 | tee "results/$t.txt"
done
