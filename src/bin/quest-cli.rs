//! Command-line front end: approximate an OpenQASM 2.0 circuit with QUEST.
//!
//! ```sh
//! quest-cli INPUT.qasm [--epsilon 0.1] [--block-size 4] [--samples 16]
//!           [--seed 42] [--out-dir DIR] [--fast] [--qiskit]
//!           [--cache-dir DIR] [--no-disk-cache]
//!           [--block-deadline SECS] [--max-gradient-evals N]
//!           [--anneal-deadline SECS] [--strict]
//!           [--trace[=json]] [--report OUT.json]
//! quest-cli serve  [--addr HOST:PORT] [--workers N] [--queue-capacity N]
//!                  [--cache-dir DIR] [--drain-deadline-secs N]
//! quest-cli client [--addr HOST:PORT] INPUT.qasm [--fast] [--seed S] ...
//!                  [--priority P] [--queue-deadline SECS]
//!                  [--report OUT.json]
//! quest-cli client metrics  [--addr HOST:PORT]
//! quest-cli client shutdown [--addr HOST:PORT]
//! ```
//!
//! Writes one `approx_<i>_<cnots>cx.qasm` per selected approximation (to
//! `--out-dir`, default alongside the input) and prints a summary.
//! Synthesized block menus persist in an on-disk cache between runs
//! (`--cache-dir`, default `~/.cache/quest-blocks/`; `--no-disk-cache` for
//! a memory-only cache), so recompiling an unchanged circuit skips
//! synthesis entirely. `--trace` streams the pipeline's span hierarchy to
//! stderr (`=json` for one JSON object per line); `--report` writes the
//! machine-readable [`quest::RunReport`] plus a `BENCH_<stem>.json` perf
//! snapshot from the same run (schemas in DESIGN.md's Observability
//! section).
//!
//! The `serve` subcommand runs the resident compilation daemon and
//! `client` submits a job to one, streaming progress events and the
//! RunReport back over the wire protocol specified in
//! `docs/questd-protocol.md` (design notes in DESIGN.md §4i).

use quest::{Quest, QuestConfig, RunReport};
use std::path::{Path, PathBuf};
use std::process::ExitCode;
use std::sync::Arc;

struct Args {
    input: PathBuf,
    out_dir: Option<PathBuf>,
    epsilon: Option<f64>,
    block_size: Option<usize>,
    samples: Option<usize>,
    seed: Option<u64>,
    fast: bool,
    qiskit: bool,
    cache_dir: Option<PathBuf>,
    no_disk_cache: bool,
    block_deadline: Option<f64>,
    max_gradient_evals: Option<usize>,
    anneal_deadline: Option<f64>,
    strict: bool,
    trace: Option<TraceFormat>,
    report: Option<PathBuf>,
}

#[derive(Clone, Copy)]
enum TraceFormat {
    Fmt,
    Json,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        input: PathBuf::new(),
        out_dir: None,
        epsilon: None,
        block_size: None,
        samples: None,
        seed: None,
        fast: false,
        qiskit: false,
        cache_dir: None,
        no_disk_cache: false,
        block_deadline: None,
        max_gradient_evals: None,
        anneal_deadline: None,
        strict: false,
        trace: None,
        report: None,
    };
    let mut it = std::env::args().skip(1);
    let mut have_input = false;
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--epsilon" => {
                args.epsilon = Some(
                    value("--epsilon")?
                        .parse()
                        .map_err(|e| format!("--epsilon: {e}"))?,
                )
            }
            "--block-size" => {
                args.block_size = Some(
                    value("--block-size")?
                        .parse()
                        .map_err(|e| format!("--block-size: {e}"))?,
                )
            }
            "--samples" => {
                args.samples = Some(
                    value("--samples")?
                        .parse()
                        .map_err(|e| format!("--samples: {e}"))?,
                )
            }
            "--seed" => {
                args.seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                )
            }
            "--out-dir" => args.out_dir = Some(PathBuf::from(value("--out-dir")?)),
            "--fast" => args.fast = true,
            "--qiskit" => args.qiskit = true,
            "--cache-dir" => args.cache_dir = Some(PathBuf::from(value("--cache-dir")?)),
            "--no-disk-cache" => args.no_disk_cache = true,
            "--block-deadline" => {
                args.block_deadline = Some(parse_seconds(
                    "--block-deadline",
                    &value("--block-deadline")?,
                )?)
            }
            "--max-gradient-evals" => {
                args.max_gradient_evals = Some(
                    value("--max-gradient-evals")?
                        .parse()
                        .map_err(|e| format!("--max-gradient-evals: {e}"))?,
                )
            }
            "--anneal-deadline" => {
                args.anneal_deadline = Some(parse_seconds(
                    "--anneal-deadline",
                    &value("--anneal-deadline")?,
                )?)
            }
            "--strict" => args.strict = true,
            "--trace" => args.trace = Some(TraceFormat::Fmt),
            "--trace=json" => args.trace = Some(TraceFormat::Json),
            "--trace=fmt" => args.trace = Some(TraceFormat::Fmt),
            "--report" => args.report = Some(PathBuf::from(value("--report")?)),
            "--help" | "-h" => return Err(String::new()),
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            path => {
                if have_input {
                    return Err("only one input file is supported".into());
                }
                args.input = PathBuf::from(path);
                have_input = true;
            }
        }
    }
    if !have_input {
        return Err("missing input .qasm file".into());
    }
    Ok(args)
}

/// Parses a positive seconds value (fractions allowed: `0.25` = 250 ms).
fn parse_seconds(flag: &str, text: &str) -> Result<f64, String> {
    let secs: f64 = text.parse().map_err(|e| format!("{flag}: {e}"))?;
    if !(secs.is_finite() && secs > 0.0) {
        return Err(format!("{flag}: expected a positive number of seconds"));
    }
    Ok(secs)
}

fn usage() {
    eprintln!(
        "usage: quest-cli INPUT.qasm [flags]   compile one circuit (below)\n\
         \u{20}      quest-cli serve [--addr HOST:PORT] [--workers N]\n\
         \u{20}                      [--queue-capacity N] [--cache-dir DIR]\n\
         \u{20}                      [--drain-deadline-secs N]\n\
         \u{20}                      run the compilation daemon (docs/questd-protocol.md)\n\
         \u{20}      quest-cli client [--addr HOST:PORT] INPUT.qasm [flags]\n\
         \u{20}                      submit a job to a running daemon\n\
         \u{20}      quest-cli client metrics  [--addr HOST:PORT]\n\
         \u{20}                      print the daemon's Prometheus counter exposition\n\
         \u{20}      quest-cli client shutdown [--addr HOST:PORT]\n\
         \u{20}                      ask the daemon to drain gracefully and exit\n\
         \n\
         usage: quest-cli INPUT.qasm [--epsilon E] [--block-size K] [--samples M]\n\
         \u{20}                 [--seed S] [--out-dir DIR] [--fast] [--qiskit]\n\
         \u{20}                 [--cache-dir DIR] [--no-disk-cache]\n\
         \u{20}                 [--trace[=json]] [--report OUT.json]\n\
         \n\
         Approximates the circuit with QUEST (ASPLOS'22) and writes one\n\
         OpenQASM file per selected low-CNOT approximation.\n\
         \n\
         --epsilon E     per-block process-distance threshold (default 0.1)\n\
         --block-size K  partition block size in qubits (default 4)\n\
         --samples M     max approximations to select (default 16)\n\
         --seed S        master seed (default 0xBA5E)\n\
         --out-dir DIR   output directory (default: input's directory)\n\
         --fast          lighter optimization budget\n\
         --qiskit        run the Qiskit-baseline passes on each sample\n\
         --cache-dir DIR persistent block-cache directory\n\
         \u{20}                (default $XDG_CACHE_HOME/quest-blocks or\n\
         \u{20}                ~/.cache/quest-blocks)\n\
         --no-disk-cache use a memory-only block cache for this run\n\
         --block-deadline SECS\n\
         \u{20}                per-block synthesis wall-clock deadline; a block\n\
         \u{20}                that hits it degrades to its exact menu entry\n\
         --max-gradient-evals N\n\
         \u{20}                per-block gradient-evaluation budget (same\n\
         \u{20}                degradation as --block-deadline, deterministic)\n\
         --anneal-deadline SECS\n\
         \u{20}                per-run selection-annealing watchdog; a timed-out\n\
         \u{20}                run contributes its best-so-far point\n\
         --strict        fail (exit 1) if any degradation event fired instead\n\
         \u{20}                of absorbing it\n\
         --trace[=json]  stream pipeline spans to stderr (text or JSON lines)\n\
         --report F.json write the RunReport JSON to F.json, plus a\n\
         \u{20}                BENCH_<input-stem>.json snapshot alongside it"
    );
}

fn main() -> ExitCode {
    // Subcommand dispatch on argv[1]; anything else (including a path that
    // happens to be first) is the original compile-one-file mode, so
    // existing `quest-cli INPUT.qasm ...` invocations are untouched.
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let outcome = match argv.first().map(String::as_str) {
        Some("serve") => serve(&argv[1..]),
        Some("client") => client(&argv[1..]),
        _ => {
            let args = match parse_args() {
                Ok(a) => a,
                Err(msg) => {
                    if !msg.is_empty() {
                        eprintln!("error: {msg}\n");
                    }
                    usage();
                    return ExitCode::FAILURE;
                }
            };
            run(&args)
        }
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

/// `quest-cli serve`: run the questd daemon until a client sends the
/// `shutdown` op, then drain gracefully. Thin wrapper over
/// [`questd::Server`] so service workflows need only the one binary.
fn serve(argv: &[String]) -> Result<(), String> {
    let mut addr = String::from("127.0.0.1:7878");
    let mut config = questd::ServerConfig::default();
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr")?.clone(),
            "--workers" => {
                config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--queue-capacity" => {
                config.queue_capacity = value("--queue-capacity")?
                    .parse()
                    .map_err(|e| format!("--queue-capacity: {e}"))?
            }
            "--cache-dir" => config.cache_dir = Some(value("--cache-dir")?.into()),
            "--drain-deadline-secs" => {
                config.drain_deadline = std::time::Duration::from_secs(
                    value("--drain-deadline-secs")?
                        .parse()
                        .map_err(|e| format!("--drain-deadline-secs: {e}"))?,
                )
            }
            other => {
                return Err(format!(
                    "serve: unknown argument {other}\n\
                     usage: quest-cli serve [--addr HOST:PORT] [--workers N] \
                     [--queue-capacity N] [--cache-dir DIR] [--drain-deadline-secs N]"
                ));
            }
        }
    }
    let drain_deadline = config.drain_deadline;
    let server =
        questd::Server::bind(&addr, config).map_err(|e| format!("cannot bind {addr}: {e}"))?;
    println!("questd listening on {}", server.local_addr());
    server.wait_for_drain_request();
    let report = server.drain(drain_deadline);
    if report.completed {
        println!("questd drained in {:.3}s", report.seconds);
        Ok(())
    } else {
        Err(format!(
            "drain deadline exceeded after {:.3}s; exiting with jobs in flight",
            report.seconds
        ))
    }
}

/// `quest-cli client metrics` / `client shutdown`: the admin verbs, which
/// take no input circuit — only `--addr`.
fn client_admin(verb: &str, argv: &[String]) -> Result<(), String> {
    let mut addr = String::from("127.0.0.1:7878");
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--addr" => {
                addr = it
                    .next()
                    .ok_or_else(|| "--addr needs a value".to_string())?
                    .clone();
            }
            other => {
                return Err(format!(
                    "client {verb}: unknown argument {other}\n\
                     usage: quest-cli client {verb} [--addr HOST:PORT]"
                ));
            }
        }
    }
    let mut client = questd::Client::connect(&addr)
        .map_err(|e| format!("cannot connect to {addr}: {e} (is `quest-cli serve` running?)"))?;
    match verb {
        "metrics" => {
            let text = client.metrics().map_err(|e| format!("metrics: {e}"))?;
            print!("{text}");
            Ok(())
        }
        "shutdown" => {
            let queued = client
                .shutdown_server()
                .map_err(|e| format!("shutdown: {e}"))?;
            println!("daemon draining ({queued} job(s) still queued)");
            Ok(())
        }
        other => Err(format!("client: unknown admin verb {other}")),
    }
}

/// `quest-cli client`: submit one circuit to a running daemon, stream its
/// progress events to stderr, and print (or write) the returned RunReport.
/// The admin verbs `client metrics` and `client shutdown` dispatch to
/// [`client_admin`] instead.
fn client(argv: &[String]) -> Result<(), String> {
    if let Some(first) = argv.first() {
        if first == "metrics" || first == "shutdown" {
            return client_admin(first, &argv[1..]);
        }
    }
    let mut addr = String::from("127.0.0.1:7878");
    let mut input: Option<PathBuf> = None;
    let mut config = questd::JobConfig::default();
    let mut priority = questd::protocol::DEFAULT_PRIORITY;
    let mut queue_deadline_ms = None;
    let mut report_path: Option<PathBuf> = None;
    let mut id = String::from("job-0");
    let mut it = argv.iter();
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<&String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => addr = value("--addr")?.clone(),
            "--id" => id = value("--id")?.clone(),
            "--fast" => config.fast = true,
            "--strict" => config.strict = true,
            "--epsilon" => {
                config.epsilon = Some(
                    value("--epsilon")?
                        .parse()
                        .map_err(|e| format!("--epsilon: {e}"))?,
                )
            }
            "--block-size" => {
                config.block_size = Some(
                    value("--block-size")?
                        .parse()
                        .map_err(|e| format!("--block-size: {e}"))?,
                )
            }
            "--samples" => {
                config.max_samples = Some(
                    value("--samples")?
                        .parse()
                        .map_err(|e| format!("--samples: {e}"))?,
                )
            }
            "--seed" => {
                config.seed = Some(
                    value("--seed")?
                        .parse()
                        .map_err(|e| format!("--seed: {e}"))?,
                )
            }
            "--block-deadline" => {
                config.block_deadline_ms = Some(millis(parse_seconds(
                    "--block-deadline",
                    value("--block-deadline")?,
                )?))
            }
            "--max-gradient-evals" => {
                config.max_gradient_evals = Some(
                    value("--max-gradient-evals")?
                        .parse()
                        .map_err(|e| format!("--max-gradient-evals: {e}"))?,
                )
            }
            "--anneal-deadline" => {
                config.anneal_deadline_ms = Some(millis(parse_seconds(
                    "--anneal-deadline",
                    value("--anneal-deadline")?,
                )?))
            }
            "--priority" => {
                priority = value("--priority")?
                    .parse()
                    .map_err(|e| format!("--priority: {e}"))?
            }
            "--queue-deadline" => {
                queue_deadline_ms = Some(millis(parse_seconds(
                    "--queue-deadline",
                    value("--queue-deadline")?,
                )?))
            }
            "--report" => report_path = Some(PathBuf::from(value("--report")?)),
            other if other.starts_with('-') => {
                return Err(format!(
                    "client: unknown flag {other}\n\
                     usage: quest-cli client [--addr HOST:PORT] INPUT.qasm [--id ID]\n\
                     \u{20}      [--fast] [--epsilon E] [--block-size K] [--samples M]\n\
                     \u{20}      [--seed S] [--block-deadline SECS] [--max-gradient-evals N]\n\
                     \u{20}      [--anneal-deadline SECS] [--strict] [--priority 0-9]\n\
                     \u{20}      [--queue-deadline SECS] [--report OUT.json]"
                ));
            }
            path => {
                if input.is_some() {
                    return Err("client: only one input file is supported".into());
                }
                input = Some(PathBuf::from(path));
            }
        }
    }
    let input = input.ok_or("client: missing input .qasm file")?;
    let qasm = std::fs::read_to_string(&input)
        .map_err(|e| format!("cannot read {}: {e}", input.display()))?;

    let mut client = questd::Client::connect(&addr)
        .map_err(|e| format!("cannot connect to {addr}: {e} (is `quest-cli serve` running?)"))?;
    client
        .submit(questd::SubmitRequest {
            id: id.clone(),
            qasm,
            config,
            priority,
            queue_deadline_ms,
        })
        .map_err(|e| format!("submit failed: {e}"))?;
    let outcome = client
        .wait_for(&id, |event| match event {
            questd::Event::Accepted {
                fingerprint,
                deduplicated,
                ..
            } => {
                eprintln!(
                    "accepted: fingerprint {fingerprint}{}",
                    if *deduplicated { " (deduplicated)" } else { "" }
                )
            }
            questd::Event::Started { .. } => eprintln!("started"),
            questd::Event::Progress { progress, .. } => eprintln!("progress: {progress:?}"),
            _ => {}
        })
        .map_err(|e| format!("connection lost: {e}"))?;
    match outcome {
        questd::JobOutcome::Report(report) => {
            let samples = report
                .get("samples")
                .and_then(|s| s.as_array())
                .map_or(0, <[qobs::json::Json]>::len);
            println!("job {id}: report received ({samples} sample(s))");
            if let Some(path) = report_path {
                std::fs::write(&path, report.pretty())
                    .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
                println!("  report: {}", path.display());
            }
            Ok(())
        }
        questd::JobOutcome::Failed { code, message } => {
            Err(format!("job {id} failed ({code}): {message}"))
        }
    }
}

/// Converts a seconds value (already validated positive) to whole ms.
fn millis(secs: f64) -> u64 {
    u64::try_from(std::time::Duration::from_secs_f64(secs).as_millis()).unwrap_or(u64::MAX)
}

/// Builds the run's block cache: two-tier (disk-backed) by default,
/// degrading to memory-only with a warning when no usable cache directory
/// exists, or on `--no-disk-cache`.
fn make_cache(args: &Args) -> quest::BlockCache {
    if args.no_disk_cache {
        return quest::BlockCache::new();
    }
    let Some(dir) = args
        .cache_dir
        .clone()
        .or_else(quest::DiskCacheConfig::default_dir)
    else {
        eprintln!(
            "warning: no cache directory (set $HOME/$XDG_CACHE_HOME or pass --cache-dir); \
             using a memory-only cache"
        );
        return quest::BlockCache::new();
    };
    match quest::BlockCache::with_disk(quest::DiskCacheConfig::new(&dir)) {
        Ok(cache) => cache,
        Err(e) => {
            eprintln!(
                "warning: cannot use cache directory {}: {e}; using a memory-only cache",
                dir.display()
            );
            quest::BlockCache::new()
        }
    }
}

fn run(args: &Args) -> Result<(), String> {
    match args.trace {
        Some(TraceFormat::Fmt) => qobs::subscribe(Arc::new(qobs::FmtSubscriber::new())),
        Some(TraceFormat::Json) => qobs::subscribe(Arc::new(qobs::JsonSubscriber::new())),
        None => {}
    }
    // A metrics session is only opened when the run will be reported; the
    // instrumentation throughout the pipeline is free otherwise.
    let metrics_session = args.report.as_ref().map(|_| qobs::metrics::session());

    let source = std::fs::read_to_string(&args.input)
        .map_err(|e| format!("cannot read {}: {e}", args.input.display()))?;
    let circuit = qcircuit::qasm::parse(&source).map_err(|e| format!("parse error: {e}"))?;
    println!(
        "parsed {}: {} qubits, {} gates, {} CNOTs",
        args.input.display(),
        circuit.num_qubits(),
        circuit.len(),
        circuit.cnot_count()
    );

    let mut cfg = if args.fast {
        QuestConfig::fast()
    } else {
        QuestConfig::default()
    };
    if let Some(e) = args.epsilon {
        cfg = cfg.with_epsilon(e);
    }
    if let Some(k) = args.block_size {
        cfg.block_size = k;
    }
    if let Some(m) = args.samples {
        cfg.max_samples = m;
    }
    if let Some(s) = args.seed {
        cfg = cfg.with_seed(s);
    }
    if let Some(secs) = args.block_deadline {
        cfg.block_deadline = Some(std::time::Duration::from_secs_f64(secs));
    }
    cfg.max_gradient_evals = args.max_gradient_evals;
    if let Some(secs) = args.anneal_deadline {
        cfg.anneal.deadline = Some(std::time::Duration::from_secs_f64(secs));
    }
    cfg.strict = args.strict;

    let t0 = std::time::Instant::now();
    let quest = Quest::new(cfg);
    // Repeated blocks inside one circuit (Trotter steps, layered ansätze)
    // are synthesized once per process; with the disk tier enabled, menus
    // also persist across runs. The counters land in the report's cache
    // fields.
    let cache = make_cache(args);
    let mut result = quest
        .try_compile_with_cache(&circuit, &cache)
        .map_err(|e| e.to_string())?;
    if result.degradation.any() {
        eprintln!("warning: degradation absorbed: {}", result.degradation);
    }
    if args.qiskit {
        for s in &mut result.samples {
            let optimized = qtranspile::optimize(&s.circuit);
            if optimized.cnot_count() <= s.cnot_count {
                s.cnot_count = optimized.cnot_count();
                s.circuit = optimized;
            }
        }
    }
    println!(
        "selected {} approximations in {:.1?} (mean CNOT reduction {:.1}%)",
        result.samples.len(),
        t0.elapsed(),
        result.cnot_reduction_percent()
    );
    let c = &result.cache;
    println!(
        "cache: {} memory hit(s), {} disk hit(s), {} synthesized fresh ({:.0}% hit rate)",
        c.hits,
        c.disk_hits,
        c.misses.saturating_sub(c.disk_hits),
        100.0 * c.hit_rate()
    );

    if let (Some(report_path), Some(session)) = (&args.report, &metrics_session) {
        write_report(&quest, &circuit, &result, report_path, &args.input, session)?;
    }

    let out_dir = args
        .out_dir
        .clone()
        .unwrap_or_else(|| args.input.parent().unwrap_or(Path::new(".")).to_path_buf());
    std::fs::create_dir_all(&out_dir)
        .map_err(|e| format!("cannot create {}: {e}", out_dir.display()))?;
    for (i, s) in result.samples.iter().enumerate() {
        let path = out_dir.join(format!("approx_{i}_{}cx.qasm", s.cnot_count));
        std::fs::write(&path, qcircuit::qasm::emit(&s.circuit))
            .map_err(|e| format!("cannot write {}: {e}", path.display()))?;
        println!(
            "  {}: {} CNOTs, process-distance bound {:.4}",
            path.display(),
            s.cnot_count,
            s.bound
        );
    }
    Ok(())
}

/// Writes the RunReport JSON to `report_path` and a `BENCH_<stem>.json`
/// snapshot of the same run into the report's directory.
fn write_report(
    quest: &Quest,
    circuit: &qcircuit::Circuit,
    result: &quest::QuestResult,
    report_path: &Path,
    input: &Path,
    session: &qobs::metrics::Session,
) -> Result<(), String> {
    let metrics = session.snapshot();
    let report = RunReport::new(quest, circuit, result).with_metrics(&metrics);
    if let Some(dir) = report_path.parent().filter(|d| !d.as_os_str().is_empty()) {
        std::fs::create_dir_all(dir)
            .map_err(|e| format!("cannot create {}: {e}", dir.display()))?;
    }
    std::fs::write(report_path, report.to_json().pretty())
        .map_err(|e| format!("cannot write {}: {e}", report_path.display()))?;
    println!("  report: {}", report_path.display());

    let stem = input
        .file_stem()
        .and_then(|s| s.to_str())
        .unwrap_or("run")
        .to_string();
    let bench_dir = report_path.parent().unwrap_or(Path::new("."));
    let bench_path = report
        .bench_snapshot(stem)
        .write_to(bench_dir)
        .map_err(|e| format!("cannot write BENCH snapshot: {e}"))?;
    println!("  bench snapshot: {}", bench_path.display());
    Ok(())
}
