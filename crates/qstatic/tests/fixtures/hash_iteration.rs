// Fixture: hash-iteration. FIRE: the HashMap below is in production code.
use std::collections::HashMap;

pub fn tally(xs: &[u64]) -> Vec<(u64, usize)> {
    let mut counts: HashMap<u64, usize> = HashMap::new();
    for &x in xs {
        *counts.entry(x).or_insert(0) += 1;
    }
    // Iteration order here varies per process — exactly the bug class.
    counts.into_iter().collect()
}

#[cfg(test)]
mod tests {
    // CLEAN: test-only HashMap use is exempt.
    use std::collections::HashMap;

    #[test]
    fn t() {
        let m: HashMap<u8, u8> = HashMap::new();
        assert!(m.is_empty());
    }
}
