// Fixture: fingerprint-wall-clock. FIRE: a timestamp folded into a cache
// key inside a fingerprint-shaped function (crate scope: quest).
pub fn config_fingerprint(seed: u64) -> u64 {
    let stamp = SystemTime::now();
    let secs = stamp
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    seed ^ secs
}

// CLEAN: the same ident outside a fingerprint-shaped fn only triggers the
// general wall-clock lint, not this one.
pub fn log_stamp() -> SystemTime {
    SystemTime::now()
}
