//! Vectorized complex AXPY for the dense hot loops.
//!
//! `axpy` computes `acc[j] += a · row[j]` — the inner operation of both
//! [`crate::Matrix::matmul_into`] and the gate-application kernels. Each
//! `j` is an independent accumulation chain, so processing elements in SIMD
//! lanes cannot reassociate any floating-point sum; the AVX path issues the
//! exact scalar operation sequence per lane (`mul`, `mul`, `addsub`, `add`
//! — never FMA), making it **bit-identical** to the scalar loop. Callers
//! therefore don't need to know which path ran.

use crate::C64;

/// `acc[j] += a * row[j]` over the common prefix of the two slices.
#[inline]
pub(crate) fn axpy(acc: &mut [C64], a: C64, row: &[C64]) {
    #[cfg(target_arch = "x86_64")]
    {
        if std::arch::is_x86_feature_detected!("avx") {
            // SAFETY: AVX support was just checked.
            unsafe { axpy_avx(acc, a, row) };
            return;
        }
    }
    axpy_scalar(acc, a, row);
}

#[inline]
fn axpy_scalar(acc: &mut [C64], a: C64, row: &[C64]) {
    for (o, &r) in acc.iter_mut().zip(row) {
        *o += a * r;
    }
}

/// AVX path: two complex numbers per 256-bit vector.
///
/// Per lane pair this computes exactly what `C64: Mul`/`AddAssign` compute:
/// `t1 = (a.re·r.re, a.re·r.im)`, `t2 = (a.im·r.im, a.im·r.re)`, then
/// `addsub` yields `(a.re·r.re − a.im·r.im, a.re·r.im + a.im·r.re)` — the
/// same products, subtraction, and addition in the same order, all under
/// IEEE round-to-nearest with no contraction.
///
/// # Safety
///
/// The caller must guarantee the CPU supports AVX (this fn is
/// `#[target_feature(enable = "avx")]`); calling it on a non-AVX CPU is
/// undefined behavior. The sole call site in [`axpy`] gates on
/// `is_x86_feature_detected!("avx")`. No other precondition: slice bounds
/// are derived from the common prefix length inside the function, and all
/// loads/stores are unaligned (`loadu`/`storeu`).
#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx")]
unsafe fn axpy_avx(acc: &mut [C64], a: C64, row: &[C64]) {
    use std::arch::x86_64::{
        _mm256_add_pd, _mm256_addsub_pd, _mm256_loadu_pd, _mm256_mul_pd, _mm256_permute_pd,
        _mm256_set1_pd, _mm256_storeu_pd,
    };
    let n = acc.len().min(row.len());
    let va_re = _mm256_set1_pd(a.re);
    let va_im = _mm256_set1_pd(a.im);
    // SAFETY: C64 is `repr(C)` with two f64 fields, so a slice of n C64s is
    // exactly 2n contiguous f64s; all pointer offsets stay within the
    // common prefix checked against `n`.
    let ap = acc.as_mut_ptr().cast::<f64>();
    let rp = row.as_ptr().cast::<f64>();
    let mut i = 0;
    while i + 2 <= n {
        let r = _mm256_loadu_pd(rp.add(2 * i));
        let t1 = _mm256_mul_pd(r, va_re);
        // Swap re/im within each complex: (r.im, r.re).
        let rs = _mm256_permute_pd(r, 0b0101);
        let t2 = _mm256_mul_pd(rs, va_im);
        let prod = _mm256_addsub_pd(t1, t2);
        let o = _mm256_loadu_pd(ap.add(2 * i));
        _mm256_storeu_pd(ap.add(2 * i), _mm256_add_pd(o, prod));
        i += 2;
    }
    if i < n {
        axpy_scalar(&mut acc[i..n], a, &row[i..n]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn axpy_matches_scalar_bitwise() {
        // Awkward values (subnormals, signed zeros, large exponents) across
        // even and odd lengths, including the tail path.
        let vals = [
            C64::new(1.5, -2.25),
            C64::new(-0.0, 0.0),
            C64::new(1e-308, -1e308),
            C64::new(std::f64::consts::PI, -1e-12),
            C64::new(-3.5e5, 7.25),
        ];
        for len in 0..=7 {
            let row: Vec<C64> = (0..len).map(|i| vals[i % vals.len()]).collect();
            let a = C64::new(0.123456789, -9.87);
            let mut got: Vec<C64> = (0..len).map(|i| vals[(i + 2) % vals.len()]).collect();
            let mut want = got.clone();
            axpy(&mut got, a, &row);
            axpy_scalar(&mut want, a, &row);
            for (g, w) in got.iter().zip(&want) {
                assert_eq!(g.re.to_bits(), w.re.to_bits(), "len {len}");
                assert_eq!(g.im.to_bits(), w.im.to_bits(), "len {len}");
            }
        }
    }
}
