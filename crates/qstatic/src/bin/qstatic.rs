//! qstatic CLI — run the workspace determinism & safety lints.
//!
//! Exit codes mirror `qlint`: 0 when clean, 1 when findings were reported,
//! 2 on usage or I/O errors.

use std::path::PathBuf;
use std::process::ExitCode;

use qstatic::lints::Lint;

const USAGE: &str = "\
qstatic — workspace determinism & safety analyzer

USAGE:
    qstatic [OPTIONS] [ROOT]

ARGS:
    ROOT    Repo root to analyze (default: current directory)

OPTIONS:
    --allowlist <FILE>   Allowlist of audited exceptions
                         (default: ROOT/qstatic.toml when present)
    --deny-all           Treat allowlist hygiene warnings (missing reasons,
                         stale entries) as errors
    --allow-warnings     Exit 0 when only warnings were reported
    --list               List the registered lints and exit
    -q, --quiet          Suppress the summary line
    -h, --help           Show this help

EXIT CODES:
    0    clean
    1    findings were reported
    2    usage or I/O error
";

struct Options {
    root: PathBuf,
    allowlist: Option<PathBuf>,
    deny_all: bool,
    allow_warnings: bool,
    list: bool,
    quiet: bool,
}

/// `Ok(None)` means help was requested (print usage, exit 0).
fn parse_args(args: &[String]) -> Result<Option<Options>, String> {
    let mut opts = Options {
        root: PathBuf::from("."),
        allowlist: None,
        deny_all: false,
        allow_warnings: false,
        list: false,
        quiet: false,
    };
    let mut root_set = false;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--allowlist" => {
                let v = it
                    .next()
                    .ok_or_else(|| "--allowlist requires a path".to_string())?;
                opts.allowlist = Some(PathBuf::from(v));
            }
            "--deny-all" => opts.deny_all = true,
            "--allow-warnings" => opts.allow_warnings = true,
            "--list" => opts.list = true,
            "-q" | "--quiet" => opts.quiet = true,
            "-h" | "--help" => return Ok(None),
            other if other.starts_with('-') => {
                return Err(format!("unknown option `{other}`"));
            }
            other => {
                if root_set {
                    return Err(format!("unexpected extra argument `{other}`"));
                }
                opts.root = PathBuf::from(other);
                root_set = true;
            }
        }
    }
    Ok(Some(opts))
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(Some(opts)) => opts,
        Ok(None) => {
            print!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("qstatic: {msg}");
            eprint!("{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list {
        for lint in Lint::ALL {
            println!("{:<24} {}", lint.id(), lint.summary());
        }
        return ExitCode::SUCCESS;
    }

    let allowlist_path = opts
        .allowlist
        .clone()
        .unwrap_or_else(|| opts.root.join("qstatic.toml"));
    let allow = match qstatic::load_allowlist(&allowlist_path) {
        Ok(allow) => allow,
        Err(msg) => {
            eprintln!("qstatic: {msg}");
            return ExitCode::from(2);
        }
    };

    let report = match qstatic::analyze_workspace(&opts.root, &allow) {
        Ok(report) => report,
        Err(msg) => {
            eprintln!("qstatic: {msg}");
            return ExitCode::from(2);
        }
    };

    for finding in &report.findings {
        eprintln!("{finding}");
    }
    let warnings_are_errors = opts.deny_all;
    for warning in &report.warnings {
        let level = if warnings_are_errors {
            "error"
        } else {
            "warning"
        };
        eprintln!("{level}[allowlist]: {warning}");
    }

    let finding_count = report.findings.len()
        + if warnings_are_errors {
            report.warnings.len()
        } else {
            0
        };
    let warning_count = if warnings_are_errors {
        0
    } else {
        report.warnings.len()
    };
    if !opts.quiet {
        eprintln!(
            "qstatic: {} file(s) scanned, {} finding(s), {} suppressed by allowlist, {} warning(s)",
            report.files_scanned,
            finding_count,
            report.suppressed.len(),
            warning_count
        );
    }

    if finding_count > 0 || (warning_count > 0 && !opts.allow_warnings) {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}
