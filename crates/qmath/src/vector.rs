//! Complex column vectors (quantum statevectors).

use crate::{Matrix, C64};
use std::fmt;
use std::ops::{Index, IndexMut};

/// A complex column vector; the workspace's statevector representation.
///
/// ```
/// use qmath::{C64, Vector};
///
/// let mut v = Vector::basis_state(2, 0); // |0⟩ on one qubit
/// assert!((v.norm() - 1.0).abs() < 1e-12);
/// v[1] = C64::ONE;
/// v.normalize();
/// let probs = v.probabilities();
/// assert!((probs[0] - 0.5).abs() < 1e-12);
/// ```
#[derive(Clone, PartialEq)]
pub struct Vector {
    data: Vec<C64>,
}

impl Vector {
    /// Creates a zero vector of the given dimension.
    pub fn zeros(dim: usize) -> Self {
        Vector {
            data: vec![C64::ZERO; dim],
        }
    }

    /// Creates the computational basis state `|k⟩` in a `dim`-dimensional
    /// space.
    ///
    /// # Panics
    ///
    /// Panics if `k >= dim`.
    pub fn basis_state(dim: usize, k: usize) -> Self {
        assert!(k < dim, "basis index {k} out of range for dimension {dim}");
        let mut v = Vector::zeros(dim);
        v[k] = C64::ONE;
        v
    }

    /// Wraps an existing buffer.
    pub fn from_vec(data: Vec<C64>) -> Self {
        Vector { data }
    }

    /// Dimension of the vector.
    #[inline]
    pub fn dim(&self) -> usize {
        self.data.len()
    }

    /// Borrow of the amplitudes.
    #[inline]
    pub fn as_slice(&self) -> &[C64] {
        &self.data
    }

    /// Mutable borrow of the amplitudes.
    #[inline]
    pub fn as_mut_slice(&mut self) -> &mut [C64] {
        &mut self.data
    }

    /// Consumes the vector, returning the underlying buffer.
    pub fn into_inner(self) -> Vec<C64> {
        self.data
    }

    /// Hermitian inner product `⟨self|other⟩ = Σ conj(selfᵢ)·otherᵢ`.
    ///
    /// # Panics
    ///
    /// Panics on dimension mismatch.
    pub fn inner(&self, other: &Vector) -> C64 {
        assert_eq!(self.dim(), other.dim(), "dimension mismatch");
        self.data
            .iter()
            .zip(&other.data)
            .map(|(a, b)| a.conj() * *b)
            .sum()
    }

    /// Euclidean (L2) norm.
    pub fn norm(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Rescales the vector to unit norm. No-op on the zero vector.
    pub fn normalize(&mut self) {
        let n = self.norm();
        if n > 0.0 {
            for z in &mut self.data {
                *z = *z / n;
            }
        }
    }

    /// Measurement probabilities `|amplitude|²` per basis state.
    pub fn probabilities(&self) -> Vec<f64> {
        self.data.iter().map(|z| z.norm_sqr()).collect()
    }

    /// Applies a matrix, returning `m · self`.
    ///
    /// # Panics
    ///
    /// Panics if `m.cols() != self.dim()`.
    pub fn transformed(&self, m: &Matrix) -> Vector {
        Vector::from_vec(m.apply(&self.data))
    }

    /// Returns `true` when every amplitude is within `tol` of `other`'s.
    pub fn approx_eq(&self, other: &Vector, tol: f64) -> bool {
        self.dim() == other.dim()
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| a.approx_eq(*b, tol))
    }
}

impl Index<usize> for Vector {
    type Output = C64;
    #[inline]
    fn index(&self, i: usize) -> &C64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for Vector {
    #[inline]
    fn index_mut(&mut self, i: usize) -> &mut C64 {
        &mut self.data[i]
    }
}

impl fmt::Debug for Vector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Vector[")?;
        for (i, z) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{z:.4}")?;
        }
        write!(f, "]")
    }
}

impl FromIterator<C64> for Vector {
    fn from_iter<I: IntoIterator<Item = C64>>(iter: I) -> Self {
        Vector::from_vec(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    // Exact float equality is deliberate throughout these tests: the
    // values are produced by bit-deterministic code paths.
    #![allow(clippy::float_cmp)]
    use super::*;

    #[test]
    fn basis_state_is_normalized() {
        let v = Vector::basis_state(8, 3);
        assert!((v.norm() - 1.0).abs() < 1e-12);
        assert_eq!(v[3], C64::ONE);
        assert_eq!(v[0], C64::ZERO);
    }

    #[test]
    fn inner_product_conjugate_symmetry() {
        let a = Vector::from_vec(vec![C64::new(1.0, 1.0), C64::new(0.0, -2.0)]);
        let b = Vector::from_vec(vec![C64::new(0.5, 0.0), C64::new(1.0, 1.0)]);
        let ab = a.inner(&b);
        let ba = b.inner(&a);
        assert!(ab.approx_eq(ba.conj(), 1e-12));
    }

    #[test]
    fn probabilities_sum_to_norm_squared() {
        let mut v = Vector::from_vec(vec![C64::new(1.0, 0.0), C64::new(0.0, 1.0)]);
        v.normalize();
        let p: f64 = v.probabilities().iter().sum();
        assert!((p - 1.0).abs() < 1e-12);
    }

    #[test]
    fn transform_by_identity_is_noop() {
        let v = Vector::basis_state(4, 2);
        let id = Matrix::identity(4);
        assert!(v.transformed(&id).approx_eq(&v, 1e-12));
    }

    #[test]
    fn normalize_zero_vector_is_noop() {
        let mut v = Vector::zeros(3);
        v.normalize();
        assert_eq!(v.norm(), 0.0);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn basis_state_out_of_range_panics() {
        let _ = Vector::basis_state(4, 4);
    }
}
