//! Figure 9: ideal-simulation output distance of QUEST's averaged
//! approximations from the ground truth — (a) TVD, (b) JSD — per algorithm.

use qsim::Statevector;

fn main() {
    let mut rows = Vec::new();
    for b in qbench::suite() {
        let truth = Statevector::run(&b.circuit).probabilities();
        let result = bench::run_quest_plus_qiskit(&b.circuit);
        let avg = quest::evaluate::averaged_ideal_distribution(&result);
        rows.push(vec![
            b.name.clone(),
            bench::f3(qsim::tvd(&truth, &avg)),
            bench::f3(qsim::jsd(&truth, &avg)),
            bench::pct(result.cnot_reduction_percent()),
            result.samples.len().to_string(),
        ]);
    }
    bench::print_table(
        "Fig. 9: QUEST averaged ideal output vs ground truth",
        &["algorithm", "TVD", "JSD", "CNOT reduction", "samples"],
        &rows,
    );
}
