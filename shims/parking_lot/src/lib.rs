//! Offline drop-in subset of the `parking_lot` API, backed by `std::sync`.
//!
//! Provides [`Mutex`] and [`RwLock`] with parking_lot's non-poisoning
//! signatures (`lock()` returns the guard directly). Poisoning is handled by
//! propagating the inner value: a poisoned `std` lock means another thread
//! panicked mid-critical-section; this shim follows parking_lot semantics
//! and hands out the data anyway.

use std::sync::{self, MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// A mutual-exclusion lock (non-poisoning `lock()` signature).
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized> {
    inner: sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a mutex holding `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.inner
            .lock()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Mutable access without locking (exclusive borrow proves uniqueness).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner
            .get_mut()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

/// A reader-writer lock (non-poisoning signatures).
#[derive(Debug, Default)]
pub struct RwLock<T: ?Sized> {
    inner: sync::RwLock<T>,
}

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub const fn new(value: T) -> Self {
        RwLock {
            inner: sync::RwLock::new(value),
        }
    }

    /// Consumes the lock, returning the data.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

impl<T: ?Sized> RwLock<T> {
    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.inner
            .read()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.inner
            .write()
            .unwrap_or_else(sync::PoisonError::into_inner)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mutex_round_trip() {
        let m = Mutex::new(1);
        *m.lock() += 1;
        assert_eq!(m.into_inner(), 2);
    }

    #[test]
    fn rwlock_round_trip() {
        let l = RwLock::new(vec![1, 2]);
        l.write().push(3);
        assert_eq!(l.read().len(), 3);
    }

    #[test]
    fn mutex_shared_across_threads() {
        let m = std::sync::Arc::new(Mutex::new(0u64));
        std::thread::scope(|s| {
            for _ in 0..4 {
                let m = std::sync::Arc::clone(&m);
                s.spawn(move || {
                    for _ in 0..1000 {
                        *m.lock() += 1;
                    }
                });
            }
        });
        assert_eq!(*m.lock(), 4000);
    }
}
