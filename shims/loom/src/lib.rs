//! Offline stand-in for the [`loom`](https://docs.rs/loom) concurrency
//! model checker.
//!
//! The real loom exhaustively explores thread interleavings of a model by
//! replacing `std::sync`/`std::thread` with instrumented versions. This
//! container has no crates.io access, so this shim keeps loom's *API shape*
//! — `loom::model(|| ...)`, `loom::thread`, `loom::sync` — but implements
//! [`model`] as **bounded stress iteration**: the model body runs many times
//! on real OS threads, with the shim's [`thread::spawn`] injecting a
//! deterministic pattern of `yield_now` calls (varied per iteration) to
//! shake out ordering-dependent bugs. This explores far fewer schedules than
//! real loom, but the checked properties (every queue slot claimed exactly
//! once, reductions independent of completion order) are the same, and a
//! model written against this shim runs unmodified under real loom.
//!
//! Iteration count: `QLOOM_ITERS` env var, default [`DEFAULT_ITERS`].

use std::sync::atomic::{AtomicU64, Ordering};

/// Default number of times [`model`] re-runs its body.
pub const DEFAULT_ITERS: usize = 64;

/// Per-iteration seed for the yield-injection pattern. Written by [`model`]
/// before each run so spawned threads perturb their schedule differently on
/// every iteration, deterministically.
static SCHEDULE_SALT: AtomicU64 = AtomicU64::new(0);

/// Runs `f` repeatedly (bounded stress exploration; see module docs).
///
/// A panic inside any iteration propagates immediately, matching real
/// loom's failure behavior.
pub fn model<F>(f: F)
where
    F: Fn() + Sync + Send + 'static,
{
    let iters = std::env::var("QLOOM_ITERS")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&n| n > 0)
        .unwrap_or(DEFAULT_ITERS);
    for i in 0..iters {
        SCHEDULE_SALT.store(i as u64, Ordering::Relaxed);
        f();
    }
}

/// `loom::thread` — spawn with deterministic schedule perturbation.
pub mod thread {
    pub use std::thread::{current, yield_now, JoinHandle};

    use super::SCHEDULE_SALT;
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Monotonic spawn counter: combined with the iteration salt it gives
    /// each spawned thread a distinct, reproducible yield pattern.
    static SPAWN_SEQ: AtomicU64 = AtomicU64::new(0);

    /// Spawns a model thread. Before running the body, the thread yields a
    /// salt-dependent number of times (0..=3) so that across [`super::model`]
    /// iterations the threads start in different relative orders.
    pub fn spawn<F, T>(f: F) -> JoinHandle<T>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        let salt = SCHEDULE_SALT.load(Ordering::Relaxed);
        let seq = SPAWN_SEQ.fetch_add(1, Ordering::Relaxed);
        std::thread::spawn(move || {
            // splitmix-style hash of (iteration, spawn index) → small jitter.
            let mut z = salt
                .wrapping_mul(0x9E37_79B9_7F4A_7C15)
                .wrapping_add(seq.wrapping_mul(0xBF58_476D_1CE4_E5B9));
            z ^= z >> 31;
            for _ in 0..(z % 4) {
                yield_now();
            }
            f()
        })
    }
}

/// `loom::sync` — re-exports of the std primitives the models use.
pub mod sync {
    pub use std::sync::{Arc, Condvar, Mutex, MutexGuard, OnceLock, RwLock};

    /// `loom::sync::atomic`.
    pub mod atomic {
        pub use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
    }
}

/// `loom::hint`.
pub mod hint {
    pub use std::hint::spin_loop;
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicUsize, Ordering};
    use super::sync::Arc;

    #[test]
    fn model_runs_body_default_iters() {
        let runs = Arc::new(AtomicUsize::new(0));
        let r = runs.clone();
        super::model(move || {
            r.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(runs.load(Ordering::Relaxed), super::DEFAULT_ITERS);
    }

    #[test]
    fn spawned_threads_join_with_result() {
        super::model(|| {
            let h = super::thread::spawn(|| 41 + 1);
            assert_eq!(h.join().unwrap(), 42);
        });
    }
}
