//! Block-level synthesis memoization: an in-memory map backed by an
//! optional persistent on-disk tier.
//!
//! The paper's case study compiles one circuit per Trotter timestep
//! (Sec. 4.3), and a timestep-`t` circuit contains the same blocks as the
//! timestep-`t−1` circuit plus one more step's worth. Approximate synthesis
//! dominates QUEST's one-time cost, so re-synthesizing identical blocks is
//! pure waste. [`BlockCache`] keys a block's approximation menu by the exact
//! gate sequence (gate kind, parameter bits, operands), making repeated
//! compilations of structurally repetitive circuits — time evolution sweeps,
//! threshold sweeps at fixed ε-independent stages — dramatically cheaper.
//!
//! The **memory tier** is keyed purely by block *content*; results are only
//! valid for one pipeline configuration, so use one in-memory cache per
//! [`crate::QuestConfig`] (enforced by fingerprinting the relevant config
//! knobs too). The **disk tier** ([`BlockCache::with_disk`]) amortizes
//! synthesis *across processes*: entries are content-addressed JSON files
//! named by the block key, a hash of the block's unitary, and a fingerprint
//! of every menu-shaping config knob (including the master seed), written
//! atomically (temp file + rename) and validated on load — the stored HS
//! distance of every approximation is re-checked against the freshly
//! recomputed circuit unitary, and any corruption, truncation, or
//! schema-version skew degrades to a cache miss (the block is simply
//! re-synthesized), never an error. A size cap evicts
//! least-recently-used entries (recency = file mtime, refreshed on hit).

use crate::config::QuestConfig;
use crate::pipeline::BlockApprox;
use parking_lot::Mutex;
use qcircuit::{Circuit, Gate};
use qmath::Matrix;
use qobs::json::Json;
use std::collections::hash_map::DefaultHasher;
use std::collections::BTreeMap;
use std::hash::{Hash, Hasher};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

/// Version of the on-disk entry format. Bump on any incompatible change to
/// the entry JSON *or* to the numerics that produced the cached menus —
/// v2 marks the batched SoA evaluator, whose suffix-product cost places
/// different (equally valid) bits in cached menus than the v1 prefix-sweep.
pub const DISK_CACHE_SCHEMA_VERSION: u64 = 2;

/// Default size cap for the disk tier (256 MiB).
pub const DEFAULT_DISK_CACHE_MAX_BYTES: u64 = 256 * 1024 * 1024;

/// Suffix of on-disk cache entries (the rest of the name is the key).
const ENTRY_SUFFIX: &str = ".qbc.json";

/// Slack allowed between an entry's stored HS distance and the distance
/// recomputed from its reconstructed circuit at load time. The stored values
/// round-trip bit-exactly, but the recomputation itself has a floating-point
/// floor: the menu's exact original is recorded at distance 0.0 while
/// `process_distance(U, U)` evaluates to ~1e-8 on 4-qubit unitaries. The
/// tolerance sits well above that floor and far below any usable
/// `epsilon_per_block`, so it never admits a genuinely wrong menu.
const DISTANCE_RECHECK_TOLERANCE: f64 = 1e-6;

/// Configuration of the persistent disk tier.
#[derive(Clone, Debug)]
pub struct DiskCacheConfig {
    /// Directory holding the entry files (created on first use).
    pub dir: PathBuf,
    /// Size cap in bytes; least-recently-used entries are evicted once the
    /// directory's entry files exceed it.
    pub max_bytes: u64,
}

impl DiskCacheConfig {
    /// A disk-tier configuration rooted at `dir` with the default size cap.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        DiskCacheConfig {
            dir: dir.into(),
            max_bytes: DEFAULT_DISK_CACHE_MAX_BYTES,
        }
    }

    /// Returns a copy with a different size cap.
    #[must_use]
    pub fn with_max_bytes(mut self, max_bytes: u64) -> Self {
        self.max_bytes = max_bytes;
        self
    }

    /// The conventional per-user cache directory:
    /// `$XDG_CACHE_HOME/quest-blocks` or `~/.cache/quest-blocks`. `None`
    /// when neither `XDG_CACHE_HOME` nor `HOME` is set.
    pub fn default_dir() -> Option<PathBuf> {
        let base = std::env::var_os("XDG_CACHE_HOME")
            .filter(|v| !v.is_empty())
            .map(PathBuf::from)
            .or_else(|| {
                std::env::var_os("HOME")
                    .filter(|v| !v.is_empty())
                    .map(|h| PathBuf::from(h).join(".cache"))
            })?;
        Some(base.join("quest-blocks"))
    }
}

/// A memoized block menu.
#[derive(Clone, Debug)]
pub(crate) struct CachedMenu {
    /// The approximation list (including the exact original).
    pub approximations: Vec<BlockApprox>,
    /// Gradient evaluations originally spent producing it.
    pub synthesis_evals: usize,
    /// The producing synthesis hit its deadline or eval budget and the menu
    /// collapsed to the exact entry. Degraded menus stay in the memory tier
    /// (a re-run under the same caps would degrade again) but are never
    /// written to disk, where they would outlive the caps that shaped them.
    pub degraded: bool,
    /// Optimizer start attempts the producing synthesis had to redraw after
    /// non-finite costs or panics. Nonzero menus took a recovery path a
    /// clean run never samples, so they are also kept off the disk tier to
    /// preserve warm-run bit-determinism.
    pub poisoned_starts: usize,
}

/// A shareable, thread-safe, two-tier cache of per-block synthesis results.
///
/// The first tier is an in-memory map (one per process/config); the optional
/// second tier is a content-addressed on-disk store shared across processes
/// and runs. `hits`/`misses` count the memory tier; `disk_hits`/
/// `disk_misses` count how the memory misses were resolved.
///
/// ```
/// use quest::cache::BlockCache;
/// let cache = BlockCache::new();
/// assert_eq!(cache.hits(), 0);
/// assert_eq!(cache.misses(), 0);
/// assert_eq!(cache.disk_hits(), 0);
/// ```
#[derive(Debug, Default)]
pub struct BlockCache {
    // Per-key OnceLock cells: concurrent lookups of the same key share one
    // synthesis run (the second caller blocks on `get_or_init` instead of
    // duplicating the work).
    inner: Mutex<BTreeMap<u64, Arc<std::sync::OnceLock<Arc<CachedMenu>>>>>,
    disk: Option<DiskCacheConfig>,
    hits: AtomicUsize,
    misses: AtomicUsize,
    disk_hits: AtomicUsize,
    disk_misses: AtomicUsize,
    evictions: AtomicUsize,
    validation_failures: AtomicUsize,
    io_retries: AtomicUsize,
}

impl BlockCache {
    /// Creates an empty in-memory cache (no disk tier).
    pub fn new() -> Self {
        BlockCache::default()
    }

    /// Creates a cache backed by the persistent disk tier at `config.dir`
    /// (the directory is created if missing).
    ///
    /// # Errors
    ///
    /// Returns the I/O error if the directory cannot be created.
    pub fn with_disk(config: DiskCacheConfig) -> std::io::Result<Self> {
        std::fs::create_dir_all(&config.dir)?;
        Ok(BlockCache {
            disk: Some(config),
            ..BlockCache::default()
        })
    }

    /// The disk-tier configuration, when one is attached.
    pub fn disk_config(&self) -> Option<&DiskCacheConfig> {
        self.disk.as_ref()
    }

    /// Number of lookups served from the in-memory tier.
    pub fn hits(&self) -> usize {
        self.hits.load(Ordering::Relaxed)
    }

    /// Number of lookups that missed the in-memory tier (resolved from disk
    /// or by fresh synthesis).
    pub fn misses(&self) -> usize {
        self.misses.load(Ordering::Relaxed)
    }

    /// Memory-tier misses served by a validated on-disk entry.
    pub fn disk_hits(&self) -> usize {
        self.disk_hits.load(Ordering::Relaxed)
    }

    /// Memory-tier misses the disk tier could not serve (absent, corrupt,
    /// or version-skewed entry — fresh synthesis ran). Always 0 without a
    /// disk tier.
    pub fn disk_misses(&self) -> usize {
        self.disk_misses.load(Ordering::Relaxed)
    }

    /// On-disk entries evicted to keep the store under its size cap.
    pub fn evictions(&self) -> usize {
        self.evictions.load(Ordering::Relaxed)
    }

    /// On-disk entries rejected at load time (corruption, truncation,
    /// schema-version or fingerprint mismatch, HS-distance re-check
    /// failure). Each one also counts as a disk miss.
    pub fn validation_failures(&self) -> usize {
        self.validation_failures.load(Ordering::Relaxed)
    }

    /// Transient disk-read failures retried with bounded backoff. A lookup
    /// whose retries all fail simply degrades to a miss.
    pub fn io_retries(&self) -> usize {
        self.io_retries.load(Ordering::Relaxed)
    }

    /// Number of distinct block menus stored in memory (completed syntheses
    /// only).
    pub fn len(&self) -> usize {
        self.inner
            .lock()
            .values()
            .filter(|cell| cell.get().is_some())
            .count()
    }

    /// Returns `true` when nothing has been cached in memory yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Drops all in-memory menus (keeps counters and the disk tier).
    pub fn clear(&self) {
        self.inner.lock().clear();
    }

    /// Looks up the menu for `key`, falling back to the disk tier and then
    /// to `make` (fresh synthesis). `target` is the block's unitary,
    /// re-derived independently at every lookup — disk entries are only
    /// accepted after their stored distances re-validate against it.
    pub(crate) fn get_or_insert_with(
        &self,
        key: u64,
        target: &Matrix,
        config: &QuestConfig,
        make: impl FnOnce() -> CachedMenu,
    ) -> Arc<CachedMenu> {
        let cell = self.inner.lock().entry(key).or_default().clone();
        // Synthesis (and any disk I/O) runs outside the map lock; concurrent
        // callers for the same key serialize on the cell instead of
        // duplicating the work.
        let mut in_memory = true;
        let value = cell
            .get_or_init(|| {
                in_memory = false;
                if let Some(menu) = self.disk_load(key, target, config) {
                    return Arc::new(menu);
                }
                let menu = make();
                self.disk_store(key, target, config, &menu);
                Arc::new(menu)
            })
            .clone();
        let counter = if in_memory { &self.hits } else { &self.misses };
        counter.fetch_add(1, Ordering::Relaxed);
        value
    }

    /// Path of the on-disk entry for this (block, config) pair. The name is
    /// fully content-addressed: block key, unitary hash, and the config
    /// fingerprint all participate, so distinct configurations never share
    /// an entry file.
    fn entry_path(&self, key: u64, target: &Matrix, config: &QuestConfig) -> Option<PathBuf> {
        let disk = self.disk.as_ref()?;
        let name = format!(
            "{key:016x}-{:016x}-{:016x}{ENTRY_SUFFIX}",
            unitary_hash(target),
            config_fingerprint(config),
        );
        Some(disk.dir.join(name))
    }

    /// Attempts to serve a lookup from the disk tier. Any failure — missing
    /// file, unreadable JSON, schema skew, fingerprint mismatch, a
    /// reconstructed circuit whose recomputed HS distance disagrees with the
    /// stored one — returns `None` (a miss); invalid entries are deleted
    /// best-effort so they are not re-parsed on every lookup.
    fn disk_load(&self, key: u64, target: &Matrix, config: &QuestConfig) -> Option<CachedMenu> {
        let path = self.entry_path(key, target, config)?;
        #[allow(unused_mut)]
        let mut text = match self.read_with_retry(&path) {
            Ok(t) => t,
            Err(e) => {
                if e.kind() != std::io::ErrorKind::NotFound {
                    // Present but persistently unreadable: treat like
                    // corruption.
                    self.reject_entry(&path);
                }
                self.disk_misses.fetch_add(1, Ordering::Relaxed);
                return None;
            }
        };
        qfault::inject!("quest.cache.entry", corrupt, &mut text);
        match decode_entry(&text, target, config) {
            Some(menu) => {
                self.disk_hits.fetch_add(1, Ordering::Relaxed);
                touch(&path);
                Some(menu)
            }
            None => {
                self.reject_entry(&path);
                self.disk_misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Reads an entry file, retrying transient failures with bounded
    /// doubling backoff (10 ms, 20 ms). `NotFound` is definitive — a cold
    /// cache is the common case — and returns immediately without a retry.
    fn read_with_retry(&self, path: &Path) -> std::io::Result<String> {
        const MAX_ATTEMPTS: usize = 3;
        let mut backoff = std::time::Duration::from_millis(10);
        let mut attempt = 0;
        loop {
            let read = match qfault::inject!("quest.cache.read", io) {
                Some(e) => Err(e),
                None => std::fs::read_to_string(path),
            };
            match read {
                Ok(text) => return Ok(text),
                Err(e) if e.kind() == std::io::ErrorKind::NotFound => return Err(e),
                Err(e) => {
                    attempt += 1;
                    if attempt >= MAX_ATTEMPTS {
                        return Err(e);
                    }
                    self.io_retries.fetch_add(1, Ordering::Relaxed);
                    std::thread::sleep(backoff);
                    backoff *= 2;
                }
            }
        }
    }

    /// Records a validation failure and removes the offending entry
    /// (best-effort — a concurrent process may have already replaced it).
    fn reject_entry(&self, path: &Path) {
        self.validation_failures.fetch_add(1, Ordering::Relaxed);
        let _ = std::fs::remove_file(path);
    }

    /// Persists a freshly synthesized menu. Fully best-effort: an
    /// unwritable cache directory degrades to a per-run cache, never an
    /// error. The write is atomic (unique temp file in the same directory,
    /// then rename), so concurrent writers racing on one key leave one
    /// winner's complete entry, never an interleaving.
    fn disk_store(&self, key: u64, target: &Matrix, config: &QuestConfig, menu: &CachedMenu) {
        // Degraded menus reflect this run's deadline/budget caps (which the
        // fingerprint deliberately omits), and poisoned menus took a salted
        // recovery seed stream; persisting either would leak
        // run-circumstantial results into clean future runs.
        if menu.degraded || menu.poisoned_starts > 0 {
            return;
        }
        let Some(path) = self.entry_path(key, target, config) else {
            return;
        };
        let text = encode_entry(key, target, config, menu).pretty();
        let tmp = path.with_extension(format!("tmp-{}", std::process::id()));
        if std::fs::write(&tmp, text).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return;
        }
        if std::fs::rename(&tmp, &path).is_err() {
            let _ = std::fs::remove_file(&tmp);
            return;
        }
        self.evict_to_cap();
    }

    /// Deletes least-recently-used entries (oldest mtime first; hits refresh
    /// mtime) until the store fits its size cap. Races with concurrent
    /// processes are benign: a doomed file already deleted elsewhere is
    /// skipped silently.
    fn evict_to_cap(&self) {
        let Some(disk) = self.disk.as_ref() else {
            return;
        };
        let Ok(read) = std::fs::read_dir(&disk.dir) else {
            return;
        };
        let mut entries: Vec<(PathBuf, u64, std::time::SystemTime)> = read
            .filter_map(Result::ok)
            .filter(|e| {
                e.file_name()
                    .to_str()
                    .is_some_and(|n| n.ends_with(ENTRY_SUFFIX))
            })
            .filter_map(|e| {
                let meta = e.metadata().ok()?;
                let mtime = meta.modified().ok()?;
                Some((e.path(), meta.len(), mtime))
            })
            .collect();
        let mut total: u64 = entries.iter().map(|(_, len, _)| len).sum();
        if total <= disk.max_bytes {
            return;
        }
        entries.sort_by_key(|(_, _, mtime)| *mtime);
        for (path, len, _) in entries {
            if total <= disk.max_bytes {
                break;
            }
            if std::fs::remove_file(&path).is_ok() {
                total = total.saturating_sub(len);
                self.evictions.fetch_add(1, Ordering::Relaxed);
            }
        }
    }
}

/// Refreshes a file's mtime so LRU eviction sees the hit (best-effort).
fn touch(path: &Path) {
    if let Ok(f) = std::fs::File::options().write(true).open(path) {
        let _ = f.set_modified(std::time::SystemTime::now());
    }
}

/// Fingerprints a block body together with the config knobs that affect its
/// synthesis result. This is the memory-tier key *and* the per-block
/// synthesis seed mix, so it deliberately excludes the master seed (which
/// is mixed in separately) and every knob that cannot change the menu.
pub(crate) fn block_key(body: &Circuit, config: &QuestConfig) -> u64 {
    let mut h = DefaultHasher::new();
    body.num_qubits().hash(&mut h);
    for inst in body.iter() {
        inst.gate.name().hash(&mut h);
        for p in inst.gate.params() {
            p.to_bits().hash(&mut h);
        }
        inst.qubits.hash(&mut h);
    }
    // Synthesis-relevant configuration.
    config.epsilon_per_block.to_bits().hash(&mut h);
    config.max_synthesis_cnots.hash(&mut h);
    config.max_candidates_per_block.hash(&mut h);
    config.synthesis.beam_width.hash(&mut h);
    config.synthesis.reseed_interval.hash(&mut h);
    config.synthesis.optimizer.max_iters.hash(&mut h);
    config.synthesis.optimizer.restarts.hash(&mut h);
    config
        .synthesis
        .optimizer
        .learning_rate
        .to_bits()
        .hash(&mut h);
    h.finish()
}

/// Content-addressed fingerprint of one whole compile *request*: the exact
/// circuit (gate kinds, parameter bits, operands) plus every configuration
/// knob that can shape the result — the menu-shaping knobs via
/// [`config_fingerprint`], the partition/selection knobs, and the
/// degradation budgets (two jobs with different budgets may legitimately
/// produce different degraded results, so they must not coalesce).
///
/// This is `questd`'s single-flight dedup key: two in-flight submissions
/// with equal fingerprints are guaranteed — by the pipeline's determinism
/// contract — to produce bit-identical [`crate::QuestResult`]s, so the
/// daemon runs one compilation and hands both clients the same report.
/// Execution-only knobs (`parallel`, `parallel_width`) are excluded: width
/// never changes artifacts.
pub fn request_fingerprint(circuit: &Circuit, config: &QuestConfig) -> u64 {
    let mut h = DefaultHasher::new();
    circuit.num_qubits().hash(&mut h);
    for inst in circuit.iter() {
        inst.gate.name().hash(&mut h);
        for p in inst.gate.params() {
            p.to_bits().hash(&mut h);
        }
        inst.qubits.hash(&mut h);
    }
    config_fingerprint(config).hash(&mut h);
    // Partition / selection knobs config_fingerprint deliberately omits
    // (they cannot change a *block's* menu, but they do change the result).
    config.block_size.hash(&mut h);
    config.max_block_gates.hash(&mut h);
    config.max_samples.hash(&mut h);
    config.cnot_weight.to_bits().hash(&mut h);
    std::mem::discriminant(&config.selection).hash(&mut h);
    let a = &config.anneal;
    a.max_evals.hash(&mut h);
    a.seed.hash(&mut h);
    a.deadline.map(|d| d.as_nanos()).hash(&mut h);
    // Degradation budgets and strictness: they shape which (worse-but-valid)
    // result a constrained run converges to, and whether it errors.
    config.block_deadline.map(|d| d.as_nanos()).hash(&mut h);
    config.max_gradient_evals.hash(&mut h);
    config.strict.hash(&mut h);
    h.finish()
}

/// Hash of a unitary's exact entries (f64 bit patterns) and dimensions —
/// the disk tier's guard against block-key collisions.
fn unitary_hash(u: &Matrix) -> u64 {
    let mut h = DefaultHasher::new();
    u.rows().hash(&mut h);
    for c in u.as_slice() {
        c.re.to_bits().hash(&mut h);
        c.im.to_bits().hash(&mut h);
    }
    h.finish()
}

/// Fingerprints every configuration knob that shapes a block's menu —
/// including the master seed, which `block_key` deliberately leaves out —
/// while excluding pure execution knobs (`parallel`, `parallel_width`,
/// `batch_width`), whose settings are bit-identical by the determinism
/// contract. The build's [`qmath::NUMERICS_MODE`] *is* hashed: strict and
/// `simd-relaxed` builds round differently, so their menus must not share
/// cache entries.
///
/// Public because `questd` keys its per-configuration in-memory caches by
/// this value: the memory tier's `block_key` excludes the master seed, so
/// two jobs differing only in seed must not share one in-memory
/// [`BlockCache`] (the disk tier already separates them via this same
/// fingerprint in the entry filename).
pub fn config_fingerprint(config: &QuestConfig) -> u64 {
    let mut h = DefaultHasher::new();
    DISK_CACHE_SCHEMA_VERSION.hash(&mut h);
    qmath::NUMERICS_MODE.hash(&mut h);
    config.seed.hash(&mut h);
    config.epsilon_per_block.to_bits().hash(&mut h);
    config.max_synthesis_cnots.hash(&mut h);
    config.max_candidates_per_block.hash(&mut h);
    let s = &config.synthesis;
    s.beam_width.hash(&mut h);
    s.reseed_interval.hash(&mut h);
    s.collect_all.hash(&mut h);
    if let Some(map) = &s.coupling {
        map.num_qubits().hash(&mut h);
        for a in 0..map.num_qubits() {
            for b in (a + 1)..map.num_qubits() {
                map.connected(a, b).hash(&mut h);
            }
        }
    }
    let o = &s.optimizer;
    o.max_iters.hash(&mut h);
    o.restarts.hash(&mut h);
    o.learning_rate.to_bits().hash(&mut h);
    o.target_cost.to_bits().hash(&mut h);
    h.finish()
}

/// Serializes a menu to the on-disk entry JSON. Floats (gate angles, HS
/// distances) round-trip bit-exactly through [`qobs::json`]'s
/// shortest-representation formatting, which is what makes warm menus
/// bit-identical to cold ones.
fn encode_entry(key: u64, target: &Matrix, config: &QuestConfig, menu: &CachedMenu) -> Json {
    let obj = |members: Vec<(&str, Json)>| {
        Json::Object(
            members
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        )
    };
    let num_qubits = target.rows().trailing_zeros() as usize;
    obj(vec![
        ("schema_version", Json::from(DISK_CACHE_SCHEMA_VERSION)),
        ("key", Json::from(format!("{key:016x}"))),
        (
            "unitary_hash",
            Json::from(format!("{:016x}", unitary_hash(target))),
        ),
        (
            "config_fingerprint",
            Json::from(format!("{:016x}", config_fingerprint(config))),
        ),
        ("num_qubits", Json::from(num_qubits)),
        ("synthesis_evals", Json::from(menu.synthesis_evals)),
        (
            "approximations",
            Json::Array(
                menu.approximations
                    .iter()
                    .map(|a| {
                        obj(vec![
                            ("cnots", Json::from(a.cnot_count)),
                            ("distance", Json::from(a.distance)),
                            (
                                "gates",
                                Json::Array(
                                    a.circuit
                                        .iter()
                                        .map(|inst| {
                                            obj(vec![
                                                ("g", Json::from(inst.gate.name().to_string())),
                                                (
                                                    "q",
                                                    Json::Array(
                                                        inst.qubits
                                                            .iter()
                                                            .map(|&q| Json::from(q))
                                                            .collect(),
                                                    ),
                                                ),
                                                (
                                                    "p",
                                                    Json::Array(
                                                        inst.gate
                                                            .params()
                                                            .iter()
                                                            .map(|&p| Json::from(p))
                                                            .collect(),
                                                    ),
                                                ),
                                            ])
                                        })
                                        .collect(),
                                ),
                            ),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// Parses and validates an on-disk entry. `None` on *any* irregularity:
/// unparseable JSON (corruption, truncated writes), schema-version skew,
/// key/fingerprint mismatch, unknown gates, out-of-range qubit operands, or
/// a stored HS distance that disagrees with the distance recomputed from
/// the reconstructed circuit against the live target unitary.
fn decode_entry(text: &str, target: &Matrix, config: &QuestConfig) -> Option<CachedMenu> {
    let json = Json::parse(text).ok()?;
    if json.get("schema_version")?.as_u64()? != DISK_CACHE_SCHEMA_VERSION {
        return None;
    }
    if json.get("unitary_hash")?.as_str()? != format!("{:016x}", unitary_hash(target)) {
        return None;
    }
    if json.get("config_fingerprint")?.as_str()? != format!("{:016x}", config_fingerprint(config)) {
        return None;
    }
    let num_qubits = usize::try_from(json.get("num_qubits")?.as_u64()?).ok()?;
    if target.rows() != 1usize.checked_shl(u32::try_from(num_qubits).ok()?)? {
        return None;
    }
    let synthesis_evals = usize::try_from(json.get("synthesis_evals")?.as_u64()?).ok()?;
    let mut approximations = Vec::new();
    for a in json.get("approximations")?.as_array()? {
        let cnot_count = usize::try_from(a.get("cnots")?.as_u64()?).ok()?;
        let distance = a.get("distance")?.as_f64()?;
        let mut circuit = Circuit::new(num_qubits);
        for g in a.get("gates")?.as_array()? {
            let name = g.get("g")?.as_str()?;
            let qubits: Vec<usize> = g
                .get("q")?
                .as_array()?
                .iter()
                .map(|q| q.as_u64().and_then(|v| usize::try_from(v).ok()))
                .collect::<Option<_>>()?;
            let params: Vec<f64> = g
                .get("p")?
                .as_array()?
                .iter()
                .map(Json::as_f64)
                .collect::<Option<_>>()?;
            let gate = gate_from_parts(name, &params)?;
            circuit.try_push(gate, &qubits).ok()?;
        }
        if circuit.cnot_count() != cnot_count {
            return None;
        }
        // The load-time contract: the menu is only trusted after its claimed
        // quality re-verifies against the *live* block unitary.
        let unitary = circuit.try_unitary().ok()?;
        let recomputed = qmath::hs::process_distance(target, &unitary);
        if !(recomputed.is_finite() && (recomputed - distance).abs() <= DISTANCE_RECHECK_TOLERANCE)
        {
            return None;
        }
        approximations.push(BlockApprox {
            circuit,
            unitary,
            distance,
            cnot_count,
        });
    }
    if approximations.is_empty() {
        return None;
    }
    Some(CachedMenu {
        approximations,
        synthesis_evals,
        // Degraded/poisoned menus are never written (see `disk_store`), so
        // anything loaded from disk is clean by construction.
        degraded: false,
        poisoned_starts: 0,
    })
}

/// Rebuilds a [`Gate`] from its canonical name and parameter list (the
/// inverse of `Gate::name()` + `Gate::params()`).
fn gate_from_parts(name: &str, params: &[f64]) -> Option<Gate> {
    let one = || -> Option<f64> { (params.len() == 1).then(|| params[0]) };
    let none = |g: Gate| -> Option<Gate> { params.is_empty().then_some(g) };
    match name {
        "x" => none(Gate::X),
        "y" => none(Gate::Y),
        "z" => none(Gate::Z),
        "h" => none(Gate::H),
        "s" => none(Gate::S),
        "sdg" => none(Gate::Sdg),
        "t" => none(Gate::T),
        "tdg" => none(Gate::Tdg),
        "rx" => Some(Gate::Rx(one()?)),
        "ry" => Some(Gate::Ry(one()?)),
        "rz" => Some(Gate::Rz(one()?)),
        "p" => Some(Gate::Phase(one()?)),
        "u3" => (params.len() == 3).then(|| Gate::U3(params[0], params[1], params[2])),
        "cx" => none(Gate::Cnot),
        "cz" => none(Gate::Cz),
        "swap" => none(Gate::Swap),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Quest, QuestConfig};

    fn toy(steps: usize) -> Circuit {
        let mut c = Circuit::new(3);
        c.h(0);
        for _ in 0..steps {
            c.cnot(0, 1).rz(1, 0.2).cnot(0, 1);
            c.cnot(1, 2).rz(2, 0.2).cnot(1, 2);
        }
        c
    }

    #[test]
    fn identical_blocks_hit_the_cache() {
        let cache = BlockCache::new();
        let quest = Quest::new(QuestConfig::fast().with_seed(1));
        // Force multiple identical 2-qubit blocks.
        let mut cfg = quest.config().clone();
        cfg.block_size = 2;
        let quest = Quest::new(cfg);
        let _ = quest.compile_with_cache(&toy(2), &cache);
        assert!(cache.misses() > 0);
        assert!(
            cache.hits() > 0,
            "repeated Trotter blocks should hit: {} hits / {} misses",
            cache.hits(),
            cache.misses()
        );
        // No disk tier: the disk counters must stay untouched.
        assert_eq!(cache.disk_hits(), 0);
        assert_eq!(cache.disk_misses(), 0);
    }

    #[test]
    fn cached_and_uncached_compilations_agree() {
        let cache = BlockCache::new();
        let quest = Quest::new(QuestConfig::fast().with_seed(2));
        let c = toy(2);
        let without = quest.compile(&c);
        let with = quest.compile_with_cache(&c, &cache);
        assert_eq!(without.samples.len(), with.samples.len());
        for (a, b) in without.samples.iter().zip(&with.samples) {
            assert_eq!(a.indices, b.indices);
            assert_eq!(a.circuit, b.circuit);
        }
    }

    #[test]
    fn second_compilation_is_mostly_cached() {
        let cache = BlockCache::new();
        let quest = Quest::new(QuestConfig::fast().with_seed(3));
        let _ = quest.compile_with_cache(&toy(1), &cache);
        let misses_before = cache.misses();
        let _ = quest.compile_with_cache(&toy(1), &cache);
        assert_eq!(
            cache.misses(),
            misses_before,
            "identical circuit must be fully cached"
        );
    }

    #[test]
    fn different_config_changes_key() {
        let c = toy(1);
        let parts = qpartition::scan_partition(&c, 3);
        let body = parts.blocks()[0].circuit();
        let cfg_a = QuestConfig::fast();
        let cfg_b = QuestConfig::fast().with_epsilon(0.37);
        assert_ne!(block_key(body, &cfg_a), block_key(body, &cfg_b));
        assert_eq!(block_key(body, &cfg_a), block_key(body, &cfg_a));
    }

    #[test]
    fn master_seed_changes_disk_fingerprint_but_not_block_key() {
        let c = toy(1);
        let parts = qpartition::scan_partition(&c, 3);
        let body = parts.blocks()[0].circuit();
        let cfg_a = QuestConfig::fast().with_seed(1);
        let cfg_b = QuestConfig::fast().with_seed(2);
        // The memory key doubles as the synthesis seed mix and must not move
        // with the master seed…
        assert_eq!(block_key(body, &cfg_a), block_key(body, &cfg_b));
        // …but menus DO depend on the master seed, so the disk tier must
        // separate them.
        assert_ne!(config_fingerprint(&cfg_a), config_fingerprint(&cfg_b));
    }

    #[test]
    fn gate_parts_roundtrip() {
        let gates = [
            Gate::X,
            Gate::H,
            Gate::Sdg,
            Gate::Tdg,
            Gate::Rx(0.25),
            Gate::Ry(-1.75),
            Gate::Rz(3.5),
            Gate::Phase(0.125),
            Gate::U3(0.1, -0.2, 0.3),
            Gate::Cnot,
            Gate::Cz,
            Gate::Swap,
        ];
        for g in gates {
            let back = gate_from_parts(g.name(), &g.params()).expect("roundtrip");
            assert_eq!(back, g, "{}", g.name());
        }
        assert_eq!(gate_from_parts("nope", &[]), None);
        assert_eq!(gate_from_parts("rz", &[]), None, "missing parameter");
        assert_eq!(gate_from_parts("x", &[0.1]), None, "spurious parameter");
    }
}
