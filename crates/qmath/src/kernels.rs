//! In-place local gate-application kernels, serial and batched.
//!
//! The synthesis hot loop multiplies a `2^n × 2^n` matrix by an embedded
//! 1- or 2-qubit operator tens of thousands of times per block. Materializing
//! the embedded `2^n × 2^n` gate (via `qcircuit::embed`) and calling
//! [`Matrix::matmul`] costs an allocation plus a dense triple loop per gate;
//! a *local* operator only ever mixes `2^k` rows (left multiplication) or
//! `2^k` columns (right multiplication) whose indices differ on the gate's
//! qubit bits, so the same product is a bit-strided sweep with no scratch
//! matrix at all.
//!
//! Two kernel families share one placement decode:
//!
//! * [`LocalOp`] applies one operator to one matrix — the serial kernels
//!   introduced in PR 3.
//! * [`BatchedLocalOp`] applies up to [`MAX_BATCH`] operators (one per
//!   *lane*, e.g. one per optimizer start) to a structure-of-arrays stack of
//!   matrices in a single traversal. Lane `b` of element `(i, j)` lives at
//!   `(i·dim + j)·lanes + b`, so the innermost dimension is the lane index
//!   and every accumulation step is a contiguous SIMD-width block
//!   ([`crate::simd::vmla`]). Gate placement is decoded once per group
//!   instead of once per lane per group.
//!
//! # Bit-exactness contract
//!
//! These kernels are drop-in replacements for `embed(...)` + `matmul` on the
//! *values* level, not just up to rounding: for every output entry they
//! accumulate exactly the same nonzero terms in exactly the same order,
//! starting from `+0.0`, as [`Matrix::matmul`]'s `i-k-j` loop does on the
//! embedded matrix. The only permitted deviations are terms that are exact
//! complex zeros (skipped or included freely — adding `±0.0` to a running sum
//! can only affect the *sign* of an exactly-zero result, never the value of a
//! nonzero one). Every nonzero output is therefore bit-identical; exact-zero
//! outputs may differ in sign only, which `C64`'s `==` (IEEE semantics,
//! `-0.0 == +0.0`) treats as equal. Property tests in `qcircuit` pin this
//! equivalence against the embed-then-matmul reference for every qubit
//! placement up to `n = 4`.
//!
//! The ordering argument in one line: `matmul` accumulates output entry
//! `(i, j)` over `k` ascending, and the embedded gate's nonzero columns `k`
//! within row `i` are `base | soff[x]` for the *sorted* scattered offsets
//! `soff`, so iterating local indices through the sorting permutation visits
//! `k` in ascending order.
//!
//! # Batched bit-exactness contract
//!
//! Lanes are fully independent accumulation chains: for every lane `b` and
//! every batch width `lanes ∈ 1..=MAX_BATCH`, a [`BatchedLocalOp`]
//! application produces results bit-identical to applying lane `b`'s
//! operator to lane `b`'s matrix alone (`lanes = 1`). Per-lane operators
//! never skip data-dependent zero entries (a skip decided by one lane's
//! value would have to apply to all lanes); shared operators skip exactly
//! the entries [`LocalOp`] skips, which are identical across lanes. Both
//! are covered by the per-contract argument above: only exact-zero terms
//! are ever included or omitted differently.
//!
//! The serial and batched kernels agree bit-for-bit in both numerics modes
//! because every scalar accumulation routes through the same
//! [`crate::simd`] multiply-accumulate step the vector paths implement
//! (strict unfused by default, FMA-contracted under `simd-relaxed`).

use crate::{Matrix, C64};

/// Maximum local operator width (qubits); the gate set is 1- and 2-qubit.
const MAX_K: usize = 2;
/// Local dimension bound (`2^MAX_K`).
const MAX_L: usize = 1 << MAX_K;
/// Maximum number of SoA lanes a [`BatchedLocalOp`] can carry — sized so
/// per-group scratch (`MAX_L · MAX_BATCH` complexes) stays a small stack
/// array and one lane block fills an AVX-512 register file comfortably.
pub const MAX_BATCH: usize = 8;

/// The placement of `k` local qubits within an `n`-qubit register: scattered
/// offsets, their sorting permutation, and the group-index expansion. Shared
/// by the serial and batched kernels so the decode is computed (and tested)
/// once.
#[derive(Clone, Copy, Debug)]
struct Placement {
    /// Number of local qubits (1 or 2).
    k: usize,
    /// Local dimension `2^k`.
    l: usize,
    /// Full dimension `2^n`.
    dim: usize,
    /// Scattered offsets of the local basis states, sorted ascending
    /// (`soff[0] == 0`).
    soff: [usize; MAX_L],
    /// Sorting permutation: `soff[x]` is the scatter of local index
    /// `perm[x]`.
    perm: [usize; MAX_L],
    /// Active bit positions (LSB-based), sorted ascending — used to expand a
    /// group index into a base index with zeros on the active bits.
    pos: [usize; MAX_K],
}

impl Placement {
    /// Computes the placement for `qubits` of an `n`-qubit register.
    ///
    /// # Panics
    ///
    /// Panics if `qubits.len()` is not 1 or 2, if a qubit is out of range,
    /// or if qubits repeat.
    fn new(qubits: &[usize], n: usize) -> Self {
        let k = qubits.len();
        assert!(
            (1..=MAX_K).contains(&k),
            "local operators act on 1 or 2 qubits, got {k}"
        );
        let l = 1usize << k;
        for (i, &q) in qubits.iter().enumerate() {
            assert!(q < n, "qubit {q} out of range for {n} qubits");
            assert!(!qubits[..i].contains(&q), "duplicate qubit {q}");
        }

        // Scatter each local basis index through the qubit bit positions.
        let mut off = [0usize; MAX_L];
        for (sub, o) in off.iter_mut().enumerate().take(l) {
            for (bit, &q) in qubits.iter().enumerate() {
                if (sub >> (k - 1 - bit)) & 1 == 1 {
                    *o |= 1 << (n - 1 - q);
                }
            }
        }
        let mut perm = [0usize; MAX_L];
        for (x, p) in perm.iter_mut().enumerate() {
            *p = x;
        }
        perm[..l].sort_by_key(|&x| off[x]);
        let mut soff = [0usize; MAX_L];
        for x in 0..l {
            soff[x] = off[perm[x]];
        }
        let mut pos = [0usize; MAX_K];
        for (i, p) in pos.iter_mut().enumerate().take(k) {
            *p = n - 1 - qubits[i];
        }
        pos[..k].sort_unstable();

        Placement {
            k,
            l,
            dim: 1usize << n,
            soff,
            perm,
            pos,
        }
    }

    /// Expands a group index into a base index with zeros inserted at the
    /// active bit positions.
    #[inline]
    fn base(&self, g: usize) -> usize {
        let mut base = g;
        for &p in &self.pos[..self.k] {
            base = ((base >> p) << (p + 1)) | (base & ((1 << p) - 1));
        }
        base
    }
}

/// A `2^k × 2^k` operator bound to `k` qubit positions of an `n`-qubit
/// register, prepared for strided application.
///
/// The placement (offsets, sorting permutation, group expansion) is computed
/// once; the local matrix can be swapped cheaply with [`LocalOp::set_1q`]
/// for parameterized gates, so per-evaluation refills are allocation-free.
///
/// ```
/// use qmath::{kernels::LocalOp, C64, Matrix};
///
/// let x = Matrix::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ONE, C64::ZERO]]);
/// let op = LocalOp::new(&x, &[1], 2); // X on qubit 1 of 2
/// let mut u = Matrix::identity(4);
/// op.apply_left_inplace(&mut u);
/// assert_eq!(u[(0, 1)], C64::ONE);
/// assert_eq!(u[(1, 0)], C64::ONE);
/// ```
#[derive(Clone, Debug)]
pub struct LocalOp {
    /// Qubit placement shared with the batched kernels.
    pl: Placement,
    /// Local matrix conjugated by the sorting permutation:
    /// `mm[x][y] = m[perm[x]][perm[y]]`.
    mm: [[C64; MAX_L]; MAX_L],
}

impl LocalOp {
    /// Prepares `m` (a `2^k × 2^k` matrix, `k = qubits.len() ∈ {1, 2}`)
    /// acting on the ordered qubit list `qubits` of an `n`-qubit register.
    ///
    /// `qubits[0]` is the most significant bit of the local index, matching
    /// `qcircuit::embed`'s big-endian convention (qubit `q` lives at bit
    /// `n - 1 - q`).
    ///
    /// # Panics
    ///
    /// Panics if `qubits.len()` is not 1 or 2, if `m` is not
    /// `2^k × 2^k`, if a qubit is out of range, or if qubits repeat.
    pub fn new(m: &Matrix, qubits: &[usize], n: usize) -> Self {
        let mut op = LocalOp {
            pl: Placement::new(qubits, n),
            mm: [[C64::ZERO; MAX_L]; MAX_L],
        };
        op.set_matrix(m);
        op
    }

    /// Prepares a 1-qubit operator given as a plain array — no `Matrix`
    /// allocation on either side.
    ///
    /// # Panics
    ///
    /// Panics if `qubit >= n`.
    pub fn from_1q(m: &[[C64; 2]; 2], qubit: usize, n: usize) -> Self {
        let mut op = LocalOp {
            pl: Placement::new(&[qubit], n),
            mm: [[C64::ZERO; MAX_L]; MAX_L],
        };
        op.set_1q(m);
        op
    }

    /// Replaces the local matrix, keeping the placement. Allocation-free.
    ///
    /// # Panics
    ///
    /// Panics if `m` is not `2^k × 2^k`.
    pub fn set_matrix(&mut self, m: &Matrix) {
        assert_eq!(
            (m.rows(), m.cols()),
            (self.pl.l, self.pl.l),
            "size mismatch"
        );
        for x in 0..self.pl.l {
            for y in 0..self.pl.l {
                self.mm[x][y] = m[(self.pl.perm[x], self.pl.perm[y])];
            }
        }
    }

    /// Replaces the local matrix of a 1-qubit operator from a plain array —
    /// the allocation-free refill path for parameterized `U3`s.
    ///
    /// # Panics
    ///
    /// Panics if the operator is not 1-qubit.
    #[inline]
    pub fn set_1q(&mut self, m: &[[C64; 2]; 2]) {
        assert_eq!(self.pl.k, 1, "set_1q needs a 1-qubit operator");
        for x in 0..2 {
            for y in 0..2 {
                self.mm[x][y] = m[self.pl.perm[x]][self.pl.perm[y]];
            }
        }
    }

    /// Full-space dimension `2^n` the operator is prepared for.
    #[inline]
    pub fn dim(&self) -> usize {
        self.pl.dim
    }

    /// `dst = op · src` (left multiplication by the embedded operator).
    ///
    /// `src` may have any column count (the full unitary case is
    /// `cols == 2^n`); only its row count must be `2^n`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn apply_left_into(&self, src: &Matrix, dst: &mut Matrix) {
        assert_eq!(src.rows(), self.pl.dim, "row count must be 2^n");
        assert_eq!((dst.rows(), dst.cols()), (src.rows(), src.cols()));
        let cols = src.cols();
        let s = src.as_slice();
        let d = dst.as_mut_slice();
        for g in 0..(self.pl.dim >> self.pl.k) {
            let base = self.pl.base(g);
            for x in 0..self.pl.l {
                let di = (base | self.pl.soff[x]) * cols;
                d[di..di + cols].fill(C64::ZERO);
                for y in 0..self.pl.l {
                    let c = self.mm[x][y];
                    if c == C64::ZERO {
                        continue;
                    }
                    let si = (base | self.pl.soff[y]) * cols;
                    // Split-free: src and dst are distinct buffers.
                    crate::simd::axpy(&mut d[di..di + cols], c, &s[si..si + cols]);
                }
            }
        }
    }

    /// `a ← op · a` in place, mixing the `2^k` rows of each group through
    /// per-element temporaries (no scratch matrix).
    ///
    /// # Panics
    ///
    /// Panics if `a` does not have `2^n` rows.
    pub fn apply_left_inplace(&self, a: &mut Matrix) {
        assert_eq!(a.rows(), self.pl.dim, "row count must be 2^n");
        let cols = a.cols();
        let data = a.as_mut_slice();
        for g in 0..(self.pl.dim >> self.pl.k) {
            let base = self.pl.base(g);
            let mut rs = [0usize; MAX_L];
            for (r, &soff) in rs.iter_mut().zip(&self.pl.soff).take(self.pl.l) {
                *r = (base | soff) * cols;
            }
            for j in 0..cols {
                let mut v = [C64::ZERO; MAX_L];
                for (vy, &r) in v.iter_mut().zip(&rs).take(self.pl.l) {
                    *vy = data[r + j];
                }
                for x in 0..self.pl.l {
                    let mut acc = C64::ZERO;
                    for (&c, &vy) in self.mm[x].iter().zip(&v).take(self.pl.l) {
                        if c == C64::ZERO {
                            continue;
                        }
                        acc = crate::simd::mla_step(acc, c, vy);
                    }
                    data[rs[x] + j] = acc;
                }
            }
        }
    }

    /// `dst = src · op` (right multiplication by the embedded operator).
    ///
    /// `src` may have any row count; only its column count must be `2^n`.
    ///
    /// # Panics
    ///
    /// Panics on shape mismatch.
    pub fn apply_right_into(&self, src: &Matrix, dst: &mut Matrix) {
        assert_eq!(src.cols(), self.pl.dim, "column count must be 2^n");
        assert_eq!((dst.rows(), dst.cols()), (src.rows(), src.cols()));
        let cols = src.cols();
        let s = src.as_slice();
        let d = dst.as_mut_slice();
        for i in 0..src.rows() {
            let srow = &s[i * cols..(i + 1) * cols];
            let drow = &mut d[i * cols..(i + 1) * cols];
            for g in 0..(self.pl.dim >> self.pl.k) {
                let base = self.pl.base(g);
                let mut v = [C64::ZERO; MAX_L];
                for x in 0..self.pl.l {
                    v[x] = srow[base | self.pl.soff[x]];
                }
                for y in 0..self.pl.l {
                    let mut acc = C64::ZERO;
                    for (mrow, &vx) in self.mm.iter().zip(&v).take(self.pl.l) {
                        let c = mrow[y];
                        if c == C64::ZERO {
                            continue;
                        }
                        // Coefficient in the first operand slot: the relaxed
                        // FMA contraction is not operand-symmetric, and the
                        // batched kernels put the gate entry there too.
                        acc = crate::simd::mla_step(acc, c, vx);
                    }
                    drow[base | self.pl.soff[y]] = acc;
                }
            }
        }
    }
}

/// A local operator applied across up to [`MAX_BATCH`] SoA lanes in one
/// traversal.
///
/// Two flavors share the struct:
///
/// * **Shared** ([`BatchedLocalOp::shared`]): one matrix for every lane
///   (fixed gates — CNOTs). Zero entries are skipped exactly as the serial
///   kernel skips them.
/// * **Per-lane** ([`BatchedLocalOp::per_lane_1q`] +
///   [`BatchedLocalOp::set_lane_1q`]): each lane carries its own 1-qubit
///   matrix (parameterized `U3`s, one optimizer start per lane). Entries are
///   stored entry-major × lane-minor so the coefficient of entry `(x, y)`
///   for all lanes is one contiguous block fed to [`crate::simd::vmla`].
///
/// Matrices and scratch are fixed-size arrays; applying an operator performs
/// zero heap allocations at any batch width.
#[derive(Clone, Debug)]
pub struct BatchedLocalOp {
    /// Qubit placement (identical decode to the serial kernel).
    pl: Placement,
    /// Whether all lanes share `shared_mm` (fixed gate) or each lane has its
    /// own slice of `lane_mm`.
    is_shared: bool,
    /// The shared matrix, permuted like [`LocalOp::mm`]. Unused (zero) for
    /// per-lane operators.
    shared_mm: [[C64; MAX_L]; MAX_L],
    /// Per-lane matrices: entry `(x, y)` of lane `b` at
    /// `(x·MAX_L + y)·MAX_BATCH + b`. Unused (zero) for shared operators.
    lane_mm: [C64; MAX_L * MAX_L * MAX_BATCH],
}

impl BatchedLocalOp {
    /// Prepares a fixed operator shared by every lane (e.g. a CNOT), with
    /// the same conventions as [`LocalOp::new`].
    ///
    /// # Panics
    ///
    /// Panics under the same conditions as [`LocalOp::new`].
    pub fn shared(m: &Matrix, qubits: &[usize], n: usize) -> Self {
        let pl = Placement::new(qubits, n);
        assert_eq!((m.rows(), m.cols()), (pl.l, pl.l), "size mismatch");
        let mut shared_mm = [[C64::ZERO; MAX_L]; MAX_L];
        for x in 0..pl.l {
            for y in 0..pl.l {
                shared_mm[x][y] = m[(pl.perm[x], pl.perm[y])];
            }
        }
        BatchedLocalOp {
            pl,
            is_shared: true,
            shared_mm,
            lane_mm: [C64::ZERO; MAX_L * MAX_L * MAX_BATCH],
        }
    }

    /// Prepares a per-lane 1-qubit operator with zeroed matrices; fill each
    /// lane with [`BatchedLocalOp::set_lane_1q`] before applying.
    ///
    /// # Panics
    ///
    /// Panics if `qubit >= n`.
    pub fn per_lane_1q(qubit: usize, n: usize) -> Self {
        BatchedLocalOp {
            pl: Placement::new(&[qubit], n),
            is_shared: false,
            shared_mm: [[C64::ZERO; MAX_L]; MAX_L],
            lane_mm: [C64::ZERO; MAX_L * MAX_L * MAX_BATCH],
        }
    }

    /// Replaces lane `lane`'s local matrix — the allocation-free per-lane
    /// refill path for parameterized `U3`s.
    ///
    /// # Panics
    ///
    /// Panics if the operator is shared, not 1-qubit, or `lane` is out of
    /// range.
    #[inline]
    pub fn set_lane_1q(&mut self, lane: usize, m: &[[C64; 2]; 2]) {
        assert!(!self.is_shared, "set_lane_1q needs a per-lane operator");
        assert_eq!(self.pl.k, 1, "set_lane_1q needs a 1-qubit operator");
        assert!(lane < MAX_BATCH, "lane {lane} out of range");
        for x in 0..2 {
            for y in 0..2 {
                self.lane_mm[(x * MAX_L + y) * MAX_BATCH + lane] =
                    m[self.pl.perm[x]][self.pl.perm[y]];
            }
        }
    }

    /// Full-space dimension `2^n` the operator is prepared for.
    #[inline]
    pub fn dim(&self) -> usize {
        self.pl.dim
    }

    /// The coefficient block of entry `(x, y)` across the first `lanes`
    /// lanes of a per-lane operator.
    #[inline]
    fn lane_block(&self, x: usize, y: usize, lanes: usize) -> &[C64] {
        let e = (x * MAX_L + y) * MAX_BATCH;
        &self.lane_mm[e..e + lanes]
    }

    /// `a ← op · a` for every lane in place. `a` is a lane-major SoA stack:
    /// `a[(i·dim + j)·lanes + b]` is entry `(i, j)` of lane `b`.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is 0 or exceeds [`MAX_BATCH`], or if `a` is not
    /// exactly `dim²·lanes` long.
    pub fn apply_left_inplace(&self, a: &mut [C64], lanes: usize) {
        let dim = self.pl.dim;
        assert!((1..=MAX_BATCH).contains(&lanes), "bad lane count {lanes}");
        assert_eq!(a.len(), dim * dim * lanes, "SoA stack size mismatch");
        let l = self.pl.l;
        let row = dim * lanes;
        let mut v = [C64::ZERO; MAX_L * MAX_BATCH];
        for g in 0..(dim >> self.pl.k) {
            let base = self.pl.base(g);
            let mut rs = [0usize; MAX_L];
            for (r, &soff) in rs.iter_mut().zip(&self.pl.soff).take(l) {
                *r = (base | soff) * row;
            }
            for j in 0..dim {
                let col = j * lanes;
                for (y, &r) in rs.iter().enumerate().take(l) {
                    v[y * lanes..(y + 1) * lanes].copy_from_slice(&a[r + col..r + col + lanes]);
                }
                for (x, &r) in rs.iter().enumerate().take(l) {
                    let out = &mut a[r + col..r + col + lanes];
                    out.fill(C64::ZERO);
                    for y in 0..l {
                        let vy = &v[y * lanes..(y + 1) * lanes];
                        if self.is_shared {
                            let c = self.shared_mm[x][y];
                            if c == C64::ZERO {
                                continue;
                            }
                            crate::simd::axpy(out, c, vy);
                        } else {
                            crate::simd::vmla(out, self.lane_block(x, y, lanes), vy);
                        }
                    }
                }
            }
        }
    }

    /// `dst = op · src` for every lane (left multiplication), row-based:
    /// each output row of a lane-major SoA stack is one contiguous
    /// `dim·lanes` slice, and a local left-multiplication only mixes the
    /// `2^k` whole rows of each group. The inner loop is therefore a
    /// full-row [`crate::simd::axpy`] (shared operator) or
    /// [`crate::simd::vmla_cyclic`] (per-lane operator) — vectorized at
    /// *every* lane count, including `lanes == 1`, unlike the per-element
    /// gather of [`BatchedLocalOp::apply_left_inplace`]. Both buffers are
    /// `dim²·lanes` stacks and must be distinct.
    ///
    /// Bit-identical per lane to [`BatchedLocalOp::apply_left_inplace`]:
    /// each output element accumulates the same terms (`y` ascending,
    /// coefficient in the first operand slot, shared zeros skipped
    /// identically) from `+0.0`.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is 0 or exceeds [`MAX_BATCH`], or on a size
    /// mismatch.
    pub fn apply_left_into(&self, src: &[C64], dst: &mut [C64], lanes: usize) {
        self.left_rows_into(src, dst, lanes, false);
    }

    /// `dst = opᵀ · src` for every lane — left multiplication by the
    /// *transpose* of the embedded operator (embedding commutes with
    /// transposition, so this transposes the `2^k × 2^k` local matrix and
    /// keeps the placement).
    ///
    /// This is how a right multiplication stays row-based: for stacks
    /// stored transposed, `(A · op)ᵀ = opᵀ · Aᵀ`, so a sweep that keeps its
    /// matrices transposed replaces [`BatchedLocalOp::apply_right_into`]
    /// with this kernel and wins full-row vectorization at every lane
    /// count. Bit-identical per element to `apply_right_into` on the
    /// untransposed stack: each output element accumulates the same terms
    /// in the same order (the transposed sweep's ascending `y` *is* the
    /// right-kernel's ascending `x`).
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is 0 or exceeds [`MAX_BATCH`], or on a size
    /// mismatch.
    pub fn apply_left_transposed_into(&self, src: &[C64], dst: &mut [C64], lanes: usize) {
        self.left_rows_into(src, dst, lanes, true);
    }

    /// Shared body of the row-based left kernels; `transposed` swaps the
    /// local-matrix index order.
    fn left_rows_into(&self, src: &[C64], dst: &mut [C64], lanes: usize, transposed: bool) {
        let dim = self.pl.dim;
        assert!((1..=MAX_BATCH).contains(&lanes), "bad lane count {lanes}");
        assert_eq!(src.len(), dim * dim * lanes, "SoA stack size mismatch");
        assert_eq!(dst.len(), src.len(), "SoA stack size mismatch");
        let l = self.pl.l;
        let row = dim * lanes;
        for g in 0..(dim >> self.pl.k) {
            let base = self.pl.base(g);
            for x in 0..l {
                let di = (base | self.pl.soff[x]) * row;
                let out = &mut dst[di..di + row];
                out.fill(C64::ZERO);
                for y in 0..l {
                    let si = (base | self.pl.soff[y]) * row;
                    let srow = &src[si..si + row];
                    if self.is_shared {
                        let c = if transposed {
                            self.shared_mm[y][x]
                        } else {
                            self.shared_mm[x][y]
                        };
                        if c == C64::ZERO {
                            continue;
                        }
                        crate::simd::axpy(out, c, srow);
                    } else {
                        let cb = if transposed {
                            self.lane_block(y, x, lanes)
                        } else {
                            self.lane_block(x, y, lanes)
                        };
                        crate::simd::vmla_cyclic(out, cb, srow);
                    }
                }
            }
        }
    }

    /// `dst = src · op` for every lane (right multiplication). Both buffers
    /// are `dim²·lanes` lane-major SoA stacks; they must be distinct.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is 0 or exceeds [`MAX_BATCH`], or on a size
    /// mismatch.
    pub fn apply_right_into(&self, src: &[C64], dst: &mut [C64], lanes: usize) {
        let dim = self.pl.dim;
        assert!((1..=MAX_BATCH).contains(&lanes), "bad lane count {lanes}");
        assert_eq!(src.len(), dim * dim * lanes, "SoA stack size mismatch");
        assert_eq!(dst.len(), src.len(), "SoA stack size mismatch");
        let l = self.pl.l;
        let row = dim * lanes;
        for i in 0..dim {
            let srow = &src[i * row..(i + 1) * row];
            let drow = &mut dst[i * row..(i + 1) * row];
            for g in 0..(dim >> self.pl.k) {
                let base = self.pl.base(g);
                for y in 0..l {
                    let col = (base | self.pl.soff[y]) * lanes;
                    let out = &mut drow[col..col + lanes];
                    out.fill(C64::ZERO);
                    for x in 0..l {
                        let scol = (base | self.pl.soff[x]) * lanes;
                        let vx = &srow[scol..scol + lanes];
                        if self.is_shared {
                            let c = self.shared_mm[x][y];
                            if c == C64::ZERO {
                                continue;
                            }
                            crate::simd::axpy(out, c, vx);
                        } else {
                            crate::simd::vmla(out, self.lane_block(x, y, lanes), vx);
                        }
                    }
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn x_gate() -> Matrix {
        Matrix::from_rows(&[&[C64::ZERO, C64::ONE], &[C64::ONE, C64::ZERO]])
    }

    fn cnot_gate() -> Matrix {
        let mut m = Matrix::zeros(4, 4);
        m[(0, 0)] = C64::ONE;
        m[(1, 1)] = C64::ONE;
        m[(2, 3)] = C64::ONE;
        m[(3, 2)] = C64::ONE;
        m
    }

    #[test]
    fn one_qubit_left_apply_matches_kron() {
        // X on qubit 0 of 2 is X ⊗ I.
        let op = LocalOp::new(&x_gate(), &[0], 2);
        let mut u = Matrix::identity(4);
        op.apply_left_inplace(&mut u);
        let expect = x_gate().kron(&Matrix::identity(2));
        assert_eq!(u, expect);
    }

    #[test]
    fn cnot_reversed_qubits_swaps_roles() {
        // Control on qubit 1: |01⟩ ↔ |11⟩ (indices 1 and 3).
        let op = LocalOp::new(&cnot_gate(), &[1, 0], 2);
        let mut u = Matrix::identity(4);
        op.apply_left_inplace(&mut u);
        assert_eq!(u[(3, 1)], C64::ONE);
        assert_eq!(u[(1, 3)], C64::ONE);
        assert_eq!(u[(0, 0)], C64::ONE);
        assert_eq!(u[(2, 2)], C64::ONE);
    }

    #[test]
    fn left_into_and_inplace_agree() {
        let m = Matrix::from_rows(&[
            &[C64::new(0.3, 0.1), C64::new(-0.2, 0.9)],
            &[C64::new(0.5, -0.4), C64::new(0.8, 0.2)],
        ]);
        let op = LocalOp::new(&m, &[1], 3);
        let src = Matrix::from_fn(8, 8, |i, j| C64::new(i as f64 + 0.25, j as f64 - 3.5));
        let mut dst = Matrix::zeros(8, 8);
        op.apply_left_into(&src, &mut dst);
        let mut inplace = src.clone();
        op.apply_left_inplace(&mut inplace);
        assert_eq!(dst, inplace);
    }

    #[test]
    fn right_apply_of_identity_is_identity() {
        let op = LocalOp::new(&cnot_gate(), &[0, 2], 3);
        let src = Matrix::from_fn(8, 8, |i, j| C64::new((i * 8 + j) as f64, 0.5));
        let mut dst = Matrix::zeros(8, 8);
        let id_op = LocalOp::new(&Matrix::identity(4), &[0, 2], 3);
        id_op.apply_right_into(&src, &mut dst);
        assert_eq!(dst, src);
        // And CNOT right-application permutes columns.
        op.apply_right_into(&src, &mut dst);
        for i in 0..8 {
            assert_eq!(dst[(i, 5)], src[(i, 4)]);
            assert_eq!(dst[(i, 4)], src[(i, 5)]);
            assert_eq!(dst[(i, 0)], src[(i, 0)]);
        }
    }

    #[test]
    fn set_1q_refill_matches_fresh_construction() {
        let m = Matrix::from_rows(&[
            &[C64::new(0.1, 0.2), C64::new(0.3, -0.1)],
            &[C64::new(-0.7, 0.0), C64::new(0.0, 1.0)],
        ]);
        let mut op = LocalOp::new(&x_gate(), &[2], 4);
        op.set_1q(&[[m[(0, 0)], m[(0, 1)]], [m[(1, 0)], m[(1, 1)]]]);
        let fresh = LocalOp::new(&m, &[2], 4);
        let src = Matrix::from_fn(16, 16, |i, j| C64::new(i as f64 * 0.5, j as f64 * 0.25));
        let (mut a, mut b) = (Matrix::zeros(16, 16), Matrix::zeros(16, 16));
        op.apply_left_into(&src, &mut a);
        fresh.apply_left_into(&src, &mut b);
        assert_eq!(a, b);
    }

    #[test]
    #[should_panic(expected = "1 or 2 qubits")]
    fn three_qubit_operator_panics() {
        let _ = LocalOp::new(&Matrix::identity(8), &[0, 1, 2], 3);
    }

    // ---- batched kernels ----

    /// A deterministic dense lane matrix (entries vary by lane).
    fn lane_matrix(dim: usize, lane: usize) -> Matrix {
        Matrix::from_fn(dim, dim, |i, j| {
            C64::new(
                0.37 * (i as f64 + 1.0) - 0.11 * j as f64 + 0.05 * lane as f64,
                0.23 * j as f64 - 0.4 * i as f64 - 0.07 * lane as f64,
            )
        })
    }

    /// A deterministic 1-qubit lane gate.
    fn lane_1q(lane: usize) -> [[C64; 2]; 2] {
        let t = 0.3 + 0.21 * lane as f64;
        [
            [C64::new(t.cos(), 0.1 * t), C64::new(-t.sin(), 0.2)],
            [C64::new(t.sin(), -0.15), C64::new(t.cos(), 0.05 * t)],
        ]
    }

    /// Packs per-lane matrices into a lane-major SoA stack.
    fn pack(ms: &[Matrix], lanes: usize) -> Vec<C64> {
        let dim = ms[0].rows();
        let mut out = vec![C64::ZERO; dim * dim * lanes];
        for (b, m) in ms.iter().enumerate().take(lanes) {
            for i in 0..dim {
                for j in 0..dim {
                    out[(i * dim + j) * lanes + b] = m[(i, j)];
                }
            }
        }
        out
    }

    /// Unpacks lane `b` of a lane-major SoA stack.
    fn unpack(stack: &[C64], dim: usize, lanes: usize, b: usize) -> Matrix {
        Matrix::from_fn(dim, dim, |i, j| stack[(i * dim + j) * lanes + b])
    }

    #[test]
    fn batched_shared_left_inplace_matches_serial_per_lane() {
        let n = 3;
        let dim = 1usize << n;
        let serial = LocalOp::new(&cnot_gate(), &[2, 0], n);
        let batched = BatchedLocalOp::shared(&cnot_gate(), &[2, 0], n);
        for lanes in [1usize, 2, 3, 5, 8] {
            let ms: Vec<Matrix> = (0..lanes).map(|b| lane_matrix(dim, b)).collect();
            let mut stack = pack(&ms, lanes);
            batched.apply_left_inplace(&mut stack, lanes);
            for (b, m) in ms.iter().enumerate() {
                let mut want = m.clone();
                serial.apply_left_inplace(&mut want);
                assert_eq!(unpack(&stack, dim, lanes, b), want, "lane {b} of {lanes}");
            }
        }
    }

    #[test]
    fn batched_per_lane_left_inplace_matches_serial_per_lane() {
        let n = 3;
        let dim = 1usize << n;
        let mut batched = BatchedLocalOp::per_lane_1q(1, n);
        for lanes in [1usize, 2, 4, 7, 8] {
            let ms: Vec<Matrix> = (0..lanes).map(|b| lane_matrix(dim, b)).collect();
            let mut stack = pack(&ms, lanes);
            for b in 0..lanes {
                batched.set_lane_1q(b, &lane_1q(b));
            }
            batched.apply_left_inplace(&mut stack, lanes);
            for (b, m) in ms.iter().enumerate() {
                let serial = LocalOp::from_1q(&lane_1q(b), 1, n);
                let mut want = m.clone();
                serial.apply_left_inplace(&mut want);
                assert_eq!(unpack(&stack, dim, lanes, b), want, "lane {b} of {lanes}");
            }
        }
    }

    #[test]
    fn batched_right_into_matches_serial_per_lane() {
        let n = 3;
        let dim = 1usize << n;
        let shared = BatchedLocalOp::shared(&cnot_gate(), &[0, 2], n);
        let serial_shared = LocalOp::new(&cnot_gate(), &[0, 2], n);
        let mut per_lane = BatchedLocalOp::per_lane_1q(2, n);
        for lanes in [1usize, 2, 4, 8] {
            let ms: Vec<Matrix> = (0..lanes).map(|b| lane_matrix(dim, b + 3)).collect();
            let stack = pack(&ms, lanes);
            let mut dst = vec![C64::ZERO; stack.len()];

            shared.apply_right_into(&stack, &mut dst, lanes);
            for (b, m) in ms.iter().enumerate() {
                let mut want = Matrix::zeros(dim, dim);
                serial_shared.apply_right_into(m, &mut want);
                assert_eq!(unpack(&dst, dim, lanes, b), want, "shared lane {b}");
            }

            for b in 0..lanes {
                per_lane.set_lane_1q(b, &lane_1q(b + 1));
            }
            per_lane.apply_right_into(&stack, &mut dst, lanes);
            for (b, m) in ms.iter().enumerate() {
                let serial = LocalOp::from_1q(&lane_1q(b + 1), 2, n);
                let mut want = Matrix::zeros(dim, dim);
                serial.apply_right_into(m, &mut want);
                assert_eq!(unpack(&dst, dim, lanes, b), want, "per-lane lane {b}");
            }
        }
    }

    #[test]
    fn batched_width_invariance_is_bitwise() {
        // Lane b's result is independent of how many other lanes ride along.
        let n = 4;
        let dim = 1usize << n;
        let mut op = BatchedLocalOp::per_lane_1q(3, n);
        let ms: Vec<Matrix> = (0..MAX_BATCH).map(|b| lane_matrix(dim, b)).collect();
        // Full-width result.
        let mut wide = pack(&ms, MAX_BATCH);
        for b in 0..MAX_BATCH {
            op.set_lane_1q(b, &lane_1q(b));
        }
        op.apply_left_inplace(&mut wide, MAX_BATCH);
        // Each lane alone.
        for (b, lane_m) in ms.iter().enumerate() {
            let mut narrow = pack(std::slice::from_ref(lane_m), 1);
            let mut single = BatchedLocalOp::per_lane_1q(3, n);
            single.set_lane_1q(0, &lane_1q(b));
            single.apply_left_inplace(&mut narrow, 1);
            let got = unpack(&wide, dim, MAX_BATCH, b);
            let want = unpack(&narrow, dim, 1, 0);
            for i in 0..dim {
                for j in 0..dim {
                    assert_eq!(
                        got[(i, j)].re.to_bits(),
                        want[(i, j)].re.to_bits(),
                        "lane {b} ({i},{j})"
                    );
                    assert_eq!(got[(i, j)].im.to_bits(), want[(i, j)].im.to_bits());
                }
            }
        }
    }

    /// Packs per-lane matrices into a *transposed* lane-major SoA stack:
    /// entry `(i, j)` of lane `b` at `(j·dim + i)·lanes + b`.
    fn pack_transposed(ms: &[Matrix], lanes: usize) -> Vec<C64> {
        let dim = ms[0].rows();
        let mut out = vec![C64::ZERO; dim * dim * lanes];
        for (b, m) in ms.iter().enumerate().take(lanes) {
            for i in 0..dim {
                for j in 0..dim {
                    out[(j * dim + i) * lanes + b] = m[(i, j)];
                }
            }
        }
        out
    }

    #[test]
    fn row_based_left_into_matches_inplace_bitwise() {
        // The row-based kernel is a bit-exact drop-in for the per-element
        // in-place kernel, for shared and per-lane operators alike.
        let n = 3;
        let dim = 1usize << n;
        let shared = BatchedLocalOp::shared(&cnot_gate(), &[2, 0], n);
        let mut per_lane = BatchedLocalOp::per_lane_1q(1, n);
        for lanes in [1usize, 2, 3, 5, 8] {
            let ms: Vec<Matrix> = (0..lanes).map(|b| lane_matrix(dim, b)).collect();
            let stack = pack(&ms, lanes);
            let mut dst = vec![C64::ZERO; stack.len()];
            for b in 0..lanes {
                per_lane.set_lane_1q(b, &lane_1q(b));
            }
            for op in [&shared, &per_lane] {
                let mut inplace = stack.clone();
                op.apply_left_inplace(&mut inplace, lanes);
                op.apply_left_into(&stack, &mut dst, lanes);
                for (e, (g, w)) in dst.iter().zip(&inplace).enumerate() {
                    assert_eq!(g.re.to_bits(), w.re.to_bits(), "lanes {lanes} e {e}");
                    assert_eq!(g.im.to_bits(), w.im.to_bits(), "lanes {lanes} e {e}");
                }
            }
        }
    }

    #[test]
    fn transposed_left_on_transposed_stack_matches_right_into_bitwise() {
        // The transposed-sweep identity: (A·op)ᵀ = opᵀ·Aᵀ, element for
        // element and bit for bit. This is what lets the suffix sweep stay
        // row-based.
        let n = 3;
        let dim = 1usize << n;
        let shared = BatchedLocalOp::shared(&cnot_gate(), &[0, 2], n);
        let mut per_lane = BatchedLocalOp::per_lane_1q(2, n);
        for lanes in [1usize, 2, 4, 8] {
            let ms: Vec<Matrix> = (0..lanes).map(|b| lane_matrix(dim, b + 3)).collect();
            let stack = pack(&ms, lanes);
            let stack_t = pack_transposed(&ms, lanes);
            let mut want = vec![C64::ZERO; stack.len()];
            let mut got_t = vec![C64::ZERO; stack.len()];
            for b in 0..lanes {
                per_lane.set_lane_1q(b, &lane_1q(b + 1));
            }
            for op in [&shared, &per_lane] {
                op.apply_right_into(&stack, &mut want, lanes);
                op.apply_left_transposed_into(&stack_t, &mut got_t, lanes);
                for i in 0..dim {
                    for j in 0..dim {
                        for b in 0..lanes {
                            let g = got_t[(j * dim + i) * lanes + b];
                            let w = want[(i * dim + j) * lanes + b];
                            assert_eq!(g.re.to_bits(), w.re.to_bits(), "({i},{j}) lane {b}");
                            assert_eq!(g.im.to_bits(), w.im.to_bits(), "({i},{j}) lane {b}");
                        }
                    }
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "bad lane count")]
    fn zero_lanes_panics() {
        let op = BatchedLocalOp::shared(&cnot_gate(), &[0, 1], 2);
        let mut stack: Vec<C64> = vec![];
        op.apply_left_inplace(&mut stack, 0);
    }
}
