#!/usr/bin/env bash
# Compares two perf snapshots (qbench BENCH_*.json files) and fails when a
# wall-clock metric regressed.
#
# Usage: bench_compare.sh BASELINE.json CANDIDATE.json [MAX_REGRESSION]
#
# Every key matching `*_seconds` or `*_ns` that appears in BOTH
# snapshots is compared; if the candidate exceeds the baseline by more than
# MAX_REGRESSION (a fraction, default 0.25 = +25%), the key is a regression
# and the script exits nonzero after printing the full table.
#
# Keys with tiny baselines are reported but not enforced — at millisecond
# scale (warm cache-hit runs) 25% is scheduler jitter, not a signal. The
# floors: 0.05 s for `*_seconds`, 1000 ns for `*_ns`.
#
# CI runs this against the committed BENCH_pipeline.json, so a PR that
# slows the synthesis hot loop or the end-to-end pipeline by >25% fails
# the build; improvements are reported and become the new baseline when
# the snapshot is regenerated (scripts/run_benches.sh).
set -eu

if [ "$#" -lt 2 ] || [ "$#" -gt 3 ]; then
    echo "usage: $0 BASELINE.json CANDIDATE.json [MAX_REGRESSION]" >&2
    exit 2
fi

BASELINE="$1" CANDIDATE="$2" MAX_REGRESSION="${3:-0.25}" python3 - <<'EOF'
import json
import os
import sys

baseline_path = os.environ["BASELINE"]
candidate_path = os.environ["CANDIDATE"]
max_regression = float(os.environ["MAX_REGRESSION"])

def load_entries(path):
    with open(path) as f:
        doc = json.load(f)
    entries = doc.get("entries", doc)
    if not isinstance(entries, dict):
        sys.exit(f"{path}: no metric entries found")
    return {
        k: float(v)
        for k, v in entries.items()
        if isinstance(v, (int, float)) and not isinstance(v, bool)
    }

def is_wallclock(key):
    return key.endswith("_seconds") or key.endswith("_ns")

def floor_for(key):
    return 0.05 if key.endswith("_seconds") else 1000.0

base = load_entries(baseline_path)
cand = load_entries(candidate_path)
shared = sorted(k for k in base if k in cand and is_wallclock(k))
if not shared:
    sys.exit("no shared *_seconds / *_ns keys between the snapshots")

regressions = []
width = max(len(k) for k in shared)
print(f"{'key':<{width}}  {'baseline':>12}  {'candidate':>12}  {'delta':>8}  verdict")
for key in shared:
    b, c = base[key], cand[key]
    delta = (c - b) / b if b > 0 else float("inf") if c > b else 0.0
    enforced = b >= floor_for(key)
    regressed = enforced and delta > max_regression
    if regressed:
        verdict = "REGRESSION"
        regressions.append((key, b, c, delta))
    elif not enforced:
        verdict = "(below floor, not enforced)"
    elif delta < 0:
        verdict = "improved"
    else:
        verdict = "ok"
    print(f"{key:<{width}}  {b:>12.3f}  {c:>12.3f}  {delta:>+7.1%}  {verdict}")

if regressions:
    print(
        f"\n{len(regressions)} regression(s) beyond +{max_regression:.0%} "
        f"vs {baseline_path}:",
        file=sys.stderr,
    )
    for key, b, c, delta in regressions:
        print(f"  {key}: {b:.3f} -> {c:.3f} ({delta:+.1%})", file=sys.stderr)
    sys.exit(1)
print(f"\nall {len(shared)} wall-clock keys within +{max_regression:.0%} of baseline")
EOF
