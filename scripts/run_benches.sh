#!/usr/bin/env bash
# Runs the Criterion benchmark suite with a reduced sampling budget suitable
# for CI / single-core machines, then regenerates the committed
# BENCH_pipeline.json perf snapshot. Full run: plain `cargo bench --workspace`.
set -u
cd "$(dirname "$0")/.."
cargo bench --workspace -- --warm-up-time 1 --measurement-time 2 --sample-size 10 "$@"
cargo run --release -q -p bench --bin perf_snapshot .
