//! Criterion benchmarks for the simulation substrate (ideal + noisy).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use qsim::{noise, Statevector};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn bench_statevector_widths(c: &mut Criterion) {
    let mut group = c.benchmark_group("statevector_run");
    for n in [4usize, 8, 12] {
        let circ = qbench::spin::tfim(n, 3, 0.1);
        group.bench_with_input(BenchmarkId::new("tfim", n), &circ, |b, circ| {
            b.iter(|| Statevector::run(circ))
        });
    }
    group.finish();
}

fn bench_unitary_builder(c: &mut Criterion) {
    let circ = qbench::arith::qft(6);
    c.bench_function("unitary_of_qft6", |b| b.iter(|| qsim::unitary_of(&circ)));
}

fn bench_noisy_trajectories(c: &mut Criterion) {
    let circ = qbench::spin::heisenberg(4, 2, 0.1);
    let model = noise::NoiseModel::pauli(0.01);
    let mut group = c.benchmark_group("noisy_run");
    group.sample_size(10);
    for traj in [16usize, 64] {
        group.bench_with_input(BenchmarkId::new("trajectories", traj), &traj, |b, &t| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(1);
                noise::run_noisy(&circ, &model, 1024, t, &mut rng)
            })
        });
    }
    group.finish();
}

fn bench_distribution_metrics(c: &mut Criterion) {
    let p: Vec<f64> = (0..1 << 12).map(|i| (i + 1) as f64).collect();
    let total: f64 = p.iter().sum();
    let p: Vec<f64> = p.iter().map(|x| x / total).collect();
    let q: Vec<f64> = p.iter().rev().copied().collect();
    c.bench_function("tvd_4096", |b| b.iter(|| qsim::tvd(&p, &q)));
    c.bench_function("jsd_4096", |b| b.iter(|| qsim::jsd(&p, &q)));
}

criterion_group!(
    benches,
    bench_statevector_widths,
    bench_unitary_builder,
    bench_noisy_trajectories,
    bench_distribution_metrics
);
criterion_main!(benches);
