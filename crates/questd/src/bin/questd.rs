//! The standalone daemon binary.
//!
//! ```sh
//! questd [--addr 127.0.0.1:7878] [--workers N] [--queue-capacity N]
//!        [--cache-dir DIR]
//! ```
//!
//! Binds the address, prints the resolved listen address (useful with port
//! 0) and serves until killed or until a client sends the `shutdown` op,
//! which triggers a graceful drain: queued jobs finish, new submissions
//! are refused with `shutting_down`, and the process exits within the
//! drain deadline. Protocol: `docs/questd-protocol.md`.

use std::process::ExitCode;

struct Args {
    addr: String,
    config: questd::ServerConfig,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        addr: "127.0.0.1:7878".into(),
        config: questd::ServerConfig::default(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(arg) = it.next() {
        let mut value = |name: &str| -> Result<String, String> {
            it.next().ok_or_else(|| format!("{name} needs a value"))
        };
        match arg.as_str() {
            "--addr" => args.addr = value("--addr")?,
            "--workers" => {
                args.config.workers = value("--workers")?
                    .parse()
                    .map_err(|e| format!("--workers: {e}"))?
            }
            "--queue-capacity" => {
                args.config.queue_capacity = value("--queue-capacity")?
                    .parse()
                    .map_err(|e| format!("--queue-capacity: {e}"))?
            }
            "--cache-dir" => args.config.cache_dir = Some(value("--cache-dir")?.into()),
            "--drain-deadline-secs" => {
                args.config.drain_deadline = std::time::Duration::from_secs(
                    value("--drain-deadline-secs")?
                        .parse()
                        .map_err(|e| format!("--drain-deadline-secs: {e}"))?,
                )
            }
            "--help" | "-h" => return Err(String::new()),
            other => return Err(format!("unknown argument {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            if !msg.is_empty() {
                eprintln!("error: {msg}\n");
            }
            eprintln!(
                "usage: questd [--addr HOST:PORT] [--workers N] [--queue-capacity N] \
                 [--cache-dir DIR] [--drain-deadline-secs N]"
            );
            return ExitCode::FAILURE;
        }
    };
    let drain_deadline = args.config.drain_deadline;
    let server = match questd::Server::bind(&args.addr, args.config) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("error: cannot bind {}: {e}", args.addr);
            return ExitCode::FAILURE;
        }
    };
    println!("questd listening on {}", server.local_addr());
    // Serve until a client sends the `shutdown` op (pure std has no
    // signal handling, so the protocol op is the SIGTERM equivalent);
    // the server's threads do all the work in the meantime.
    server.wait_for_drain_request();
    let report = server.drain(drain_deadline);
    if report.completed {
        println!("questd drained in {:.3}s", report.seconds);
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "questd drain deadline exceeded after {:.3}s; exiting with jobs in flight",
            report.seconds
        );
        ExitCode::FAILURE
    }
}
