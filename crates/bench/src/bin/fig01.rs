//! Figure 1 (motivation): TFIM and Heisenberg magnetization on a noisy
//! Manila-class backend vs. the ideal ground truth, with all
//! Qiskit-baseline optimizations applied — showing the output is far from
//! the expected curve even after standard compilation.

use qbench::observables::average_magnetization;
use qsim::{noise::NoiseModel, Statevector};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let model = NoiseModel::linear5();
    let mut rng = StdRng::seed_from_u64(0xF1601);
    for (name, gen) in [
        (
            "TFIM",
            qbench::spin::tfim as fn(usize, usize, f64) -> qcircuit::Circuit,
        ),
        ("Heisenberg", qbench::spin::heisenberg),
    ] {
        let mut rows = Vec::new();
        for t in 1..=10usize {
            let circuit = gen(4, t, 0.1);
            let optimized = qtranspile::optimize(&circuit);
            let truth = Statevector::run(&circuit).probabilities();
            let noisy = qsim::noise::run_noisy(
                &optimized,
                &model,
                bench::SHOTS,
                bench::TRAJECTORIES,
                &mut rng,
            )
            .probabilities();
            rows.push(vec![
                t.to_string(),
                bench::f3(average_magnetization(&truth, 4)),
                bench::f3(average_magnetization(&noisy, 4)),
                bench::f3(qsim::tvd(&truth, &noisy)),
            ]);
        }
        bench::print_table(
            &format!("Fig. 1: {name} 4-spin time evolution on noisy linear5 (Qiskit baseline)"),
            &["timestep", "truth ⟨m⟩", "noisy ⟨m⟩", "TVD"],
            &rows,
        );
    }
}
