//! Offline drop-in subset of the `rand` 0.9 API.
//!
//! The build environment for this workspace has no access to crates.io, so
//! the handful of `rand` items the workspace actually uses are reimplemented
//! here and wired in as a path dependency (see `crates/shims/README.md`).
//!
//! Implemented surface:
//!
//! * [`Rng`] — `random_range`, `random`, `random_bool`
//! * [`SeedableRng`] — `seed_from_u64`, `from_seed`
//! * [`rngs::StdRng`] — a deterministic xoshiro256++ generator
//!
//! The generator is *not* the upstream ChaCha12-based `StdRng`; streams
//! differ from the real crate, which only matters for tests pinning exact
//! values (none in this workspace — seeds here pin determinism, not
//! sequences).

use std::ops::{Range, RangeInclusive};

/// Types that can be sampled uniformly from the "standard" distribution,
/// mirroring `rand::distr::StandardUniform` coverage for the types used
/// in-tree.
pub trait Standard: Sized {
    /// Draws one value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 random mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard for u64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Standard for u32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 32) as u32
    }
}

impl Standard for u8 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 56) as u8
    }
}

/// Range arguments accepted by [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range.
    ///
    /// # Panics
    ///
    /// Panics when the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            // start + v < end by construction, so the final `as $t` is in-range.
            #[allow(clippy::cast_possible_truncation)]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u128;
                // Multiply-shift rejection-free mapping is fine here: span is
                // tiny relative to 2^64 in every in-tree use, so modulo bias
                // is far below statistical relevance for tests/benchmarks.
                let v = (rng.next_u64() as u128) % span;
                (self.start as i128 + v as i128) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            // s + v <= e by construction, so the final `as $t` is in-range.
            #[allow(clippy::cast_possible_truncation)]
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                let span = (e as i128 - s as i128) as u128 + 1;
                let v = (rng.next_u64() as u128) % span;
                (s as i128 + v as i128) as $t
            }
        }
    )*};
}
impl_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_float_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                self.start + unit * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (s, e) = (*self.start(), *self.end());
                assert!(s <= e, "cannot sample empty range");
                let unit = <$t as Standard>::sample_standard(rng);
                s + unit * (e - s)
            }
        }
    )*};
}
impl_float_range!(f32, f64);

/// Core source of randomness: a stream of `u64`s.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// User-facing sampling methods, auto-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Uniform draw from a range (`0..n`, `-1.0..1.0`, `0..=9`, …).
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_from(self)
    }

    /// One draw from the standard distribution of `T`.
    fn random<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 <= p <= 1.0`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.random::<f64>() < p
    }
}

impl<T: RngCore + ?Sized> Rng for T {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    /// The seed type (`[u8; 32]` for [`rngs::StdRng`]).
    type Seed;

    /// Builds a generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds a generator from a `u64` via SplitMix64 expansion.
    fn seed_from_u64(state: u64) -> Self;
}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// xoshiro256++ — small, fast, and statistically solid; stands in for
    /// upstream's ChaCha12-based `StdRng` (streams differ, determinism per
    /// seed is preserved).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, chunk) in seed.chunks_exact(8).enumerate() {
                s[i] = u64::from_le_bytes(chunk.try_into().expect("8-byte chunk"));
            }
            // An all-zero state is a fixed point of xoshiro; divert it.
            if s == [0; 4] {
                return Self::seed_from_u64(0);
            }
            StdRng { s }
        }

        fn seed_from_u64(mut state: u64) -> Self {
            let mut s = [0u64; 4];
            for slot in &mut s {
                *slot = splitmix64(&mut state);
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let same = (0..64)
            .filter(|_| a.random::<u64>() == b.random::<u64>())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let x: usize = rng.random_range(0..7);
            assert!(x < 7);
            let y: f64 = rng.random_range(-2.0..3.0);
            assert!((-2.0..3.0).contains(&y));
            let z: i32 = rng.random_range(-5..=5);
            assert!((-5..=5).contains(&z));
        }
    }

    #[test]
    fn unit_floats_cover_midrange() {
        let mut rng = StdRng::seed_from_u64(4);
        let mean: f64 = (0..4000).map(|_| rng.random::<f64>()).sum::<f64>() / 4000.0;
        assert!((mean - 0.5).abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(5);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
