//! Benchmark circuit generators — the paper's Table 1 algorithm suite.
//!
//! | Algorithm | Generator | Notes |
//! |---|---|---|
//! | Adder | [`arith::adder`] | Cuccaro ripple-carry [paper ref 9] |
//! | Multiplier | [`arith::multiplier`] | QFT-based (Draper-style) multiplier |
//! | QFT | [`arith::qft`] | Quantum Fourier transform |
//! | HLF | [`varia::hlf`] | Hidden linear function (Bravyi et al.) |
//! | QAOA | [`varia::qaoa_maxcut`] | MaxCut alternating-operator ansatz |
//! | VQE | [`varia::vqe_ansatz`] | Hardware-efficient variational ansatz |
//! | TFIM | [`spin::tfim`] | Transverse-field Ising time evolution |
//! | Heisenberg | [`spin::heisenberg`] | XYZ Heisenberg time evolution |
//! | XY | [`spin::xy`] | XY-model time evolution |
//!
//! All generators emit circuits over the workspace gate set (one-qubit
//! rotations + CNOT/CZ), with multi-controlled operations pre-decomposed —
//! matching the paper's premise that every algorithm reduces to rotations
//! plus CNOTs (Sec. 1.1).
//!
//! [`suite`] assembles the named benchmark instances used across the
//! figure-regeneration harnesses.

#![deny(missing_docs)]

pub mod arith;
pub mod observables;
pub mod spin;
pub mod states;
pub mod varia;

use qcircuit::Circuit;

/// A named benchmark instance.
#[derive(Clone, Debug)]
pub struct Benchmark {
    /// Display name in `algo_qubits` form, e.g. `"tfim_4"`.
    pub name: String,
    /// The circuit.
    pub circuit: Circuit,
}

impl Benchmark {
    /// Creates a named benchmark.
    pub fn new(name: impl Into<String>, circuit: Circuit) -> Self {
        Benchmark {
            name: name.into(),
            circuit,
        }
    }
}

/// The default evaluation suite: one instance per Table-1 algorithm at
/// laptop-tractable sizes (see DESIGN.md's scale substitution).
///
/// Deterministic: random-structure benchmarks (HLF, QAOA weights, VQE
/// angles) are seeded.
pub fn suite() -> Vec<Benchmark> {
    vec![
        Benchmark::new("adder_4", arith::adder(1)),
        Benchmark::new("heisenberg_4", spin::heisenberg(4, 2, 0.1)),
        Benchmark::new("hlf_5", varia::hlf(5, 0xB10C)),
        Benchmark::new("qft_4", arith::qft(4)),
        Benchmark::new("qaoa_5", varia::qaoa_maxcut(5, 2, 0xCAFE)),
        Benchmark::new("mult_8", arith::multiplier(2)),
        Benchmark::new("tfim_4", spin::tfim(4, 4, 0.1)),
        Benchmark::new("vqe_4", varia::vqe_ansatz(4, 3, 0xBEEF)),
        Benchmark::new("xy_4", spin::xy(4, 2, 0.1)),
    ]
}

/// A larger-width variant of [`suite`] for scalability experiments
/// (Fig. 11): same algorithms at 6–8 qubits.
pub fn scaling_suite() -> Vec<Benchmark> {
    vec![
        Benchmark::new("adder_6", arith::adder(2)),
        Benchmark::new("hlf_7", varia::hlf(7, 0xB10C)),
        Benchmark::new("qaoa_7", varia::qaoa_maxcut(7, 1, 0xCAFE)),
        Benchmark::new("tfim_8", spin::tfim(8, 2, 0.1)),
        Benchmark::new("xy_6", spin::xy(6, 2, 0.1)),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_names_are_unique_and_sized() {
        let s = suite();
        let mut names: Vec<&str> = s.iter().map(|b| b.name.as_str()).collect();
        names.sort();
        names.dedup();
        assert_eq!(names.len(), s.len(), "duplicate benchmark names");
        for b in &s {
            let declared: usize = b
                .name
                .rsplit('_')
                .next()
                .unwrap()
                .parse()
                .expect("name ends in qubit count");
            assert_eq!(
                b.circuit.num_qubits(),
                declared,
                "{} width mismatch",
                b.name
            );
            assert!(!b.circuit.is_empty(), "{} is empty", b.name);
        }
    }

    #[test]
    fn suite_is_deterministic() {
        let a = suite();
        let b = suite();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.circuit, y.circuit, "{} not deterministic", x.name);
        }
    }

    #[test]
    fn all_suite_circuits_have_cnots() {
        // QUEST targets CNOT reduction; every benchmark must have some.
        for b in suite() {
            assert!(b.circuit.cnot_count() > 0, "{} has no CNOTs", b.name);
        }
    }
}
