//! Span/event sinks: the [`Subscriber`] trait plus the two CLI-facing
//! implementations (human-readable [`FmtSubscriber`], line-delimited
//! [`JsonSubscriber`]) and a collecting [`TestSubscriber`] for assertions.

use crate::json::Json;
use crate::span::Field;
use std::io::Write as _;
use std::sync::Mutex;
use std::time::Duration;

/// Receives span enter/exit and event notifications from every thread.
///
/// `depth` is the nesting depth on the emitting thread (0 = top level);
/// worker threads start at depth 0 in their own right, so subscribers that
/// reconstruct a tree should also key on the thread id they observe.
pub trait Subscriber: Send + Sync {
    /// A span opened.
    fn on_enter(&self, name: &'static str, fields: &[(&'static str, Field)], depth: usize);
    /// A span closed after `elapsed`.
    fn on_exit(
        &self,
        name: &'static str,
        fields: &[(&'static str, Field)],
        depth: usize,
        elapsed: Duration,
    );
    /// An instantaneous event fired.
    fn on_event(&self, name: &'static str, fields: &[(&'static str, Field)], depth: usize);
}

fn fmt_fields(fields: &[(&'static str, Field)]) -> String {
    if fields.is_empty() {
        return String::new();
    }
    let body: Vec<String> = fields.iter().map(|(k, v)| format!("{k}={v}")).collect();
    format!(" {{{}}}", body.join(" "))
}

/// Indented, human-readable span log on stderr:
///
/// ```text
/// → quest.compile {qubits=4 gates=12}
///   → quest.partition
///   ← quest.partition 312µs
/// ← quest.compile 1.8s
/// ```
#[derive(Debug, Default)]
pub struct FmtSubscriber {
    out: Mutex<()>,
}

impl FmtSubscriber {
    /// Creates a subscriber writing to stderr.
    pub fn new() -> Self {
        FmtSubscriber::default()
    }

    fn line(&self, depth: usize, text: &str) {
        let _guard = self.out.lock().unwrap();
        let mut err = std::io::stderr().lock();
        let _ = writeln!(err, "{:indent$}{text}", "", indent = depth * 2);
    }
}

impl Subscriber for FmtSubscriber {
    fn on_enter(&self, name: &'static str, fields: &[(&'static str, Field)], depth: usize) {
        self.line(depth, &format!("→ {name}{}", fmt_fields(fields)));
    }

    fn on_exit(
        &self,
        name: &'static str,
        _fields: &[(&'static str, Field)],
        depth: usize,
        elapsed: Duration,
    ) {
        self.line(depth, &format!("← {name} {elapsed:.1?}"));
    }

    fn on_event(&self, name: &'static str, fields: &[(&'static str, Field)], depth: usize) {
        self.line(depth, &format!("· {name}{}", fmt_fields(fields)));
    }
}

fn json_record(
    kind: &str,
    name: &str,
    fields: &[(&'static str, Field)],
    depth: usize,
    elapsed: Option<Duration>,
) -> Json {
    let mut obj: Vec<(String, Json)> = vec![
        ("type".into(), Json::from(kind)),
        ("name".into(), Json::from(name)),
        ("depth".into(), Json::from(depth)),
        (
            "thread".into(),
            Json::from(format!("{:?}", std::thread::current().id())),
        ),
    ];
    if let Some(e) = elapsed {
        obj.push(("elapsed_us".into(), Json::from(e.as_secs_f64() * 1e6)));
    }
    if !fields.is_empty() {
        let body: Vec<(String, Json)> = fields
            .iter()
            .map(|(k, v)| ((*k).to_string(), Json::from(v.clone())))
            .collect();
        obj.push(("fields".into(), Json::Object(body)));
    }
    Json::Object(obj)
}

/// Machine-readable span log: one JSON object per line on stderr, with
/// `type` ∈ {`span_enter`, `span_exit`, `event`}, the emitting thread, and
/// `elapsed_us` on exits. This is the `--trace=json` layer of `quest-cli`.
#[derive(Debug, Default)]
pub struct JsonSubscriber {
    out: Mutex<()>,
}

impl JsonSubscriber {
    /// Creates a subscriber writing JSON lines to stderr.
    pub fn new() -> Self {
        JsonSubscriber::default()
    }

    fn line(&self, record: &Json) {
        let _guard = self.out.lock().unwrap();
        let mut err = std::io::stderr().lock();
        let _ = writeln!(err, "{record}");
    }
}

impl Subscriber for JsonSubscriber {
    fn on_enter(&self, name: &'static str, fields: &[(&'static str, Field)], depth: usize) {
        self.line(&json_record("span_enter", name, fields, depth, None));
    }

    fn on_exit(
        &self,
        name: &'static str,
        fields: &[(&'static str, Field)],
        depth: usize,
        elapsed: Duration,
    ) {
        self.line(&json_record(
            "span_exit",
            name,
            fields,
            depth,
            Some(elapsed),
        ));
    }

    fn on_event(&self, name: &'static str, fields: &[(&'static str, Field)], depth: usize) {
        self.line(&json_record("event", name, fields, depth, None));
    }
}

/// Collects span/event names in order — for tests asserting that a code
/// path is instrumented.
#[derive(Debug, Default)]
pub struct TestSubscriber {
    entered: Mutex<Vec<String>>,
    exited: Mutex<Vec<String>>,
    events: Mutex<Vec<String>>,
}

impl TestSubscriber {
    /// Names of spans entered, in order.
    pub fn entered(&self) -> Vec<String> {
        self.entered.lock().unwrap().clone()
    }

    /// Names of spans exited, in order.
    pub fn exited(&self) -> Vec<String> {
        self.exited.lock().unwrap().clone()
    }

    /// Names of events emitted, in order.
    pub fn events(&self) -> Vec<String> {
        self.events.lock().unwrap().clone()
    }
}

impl Subscriber for TestSubscriber {
    fn on_enter(&self, name: &'static str, _fields: &[(&'static str, Field)], _depth: usize) {
        self.entered.lock().unwrap().push(name.to_string());
    }

    fn on_exit(
        &self,
        name: &'static str,
        _fields: &[(&'static str, Field)],
        _depth: usize,
        _elapsed: Duration,
    ) {
        self.exited.lock().unwrap().push(name.to_string());
    }

    fn on_event(&self, name: &'static str, _fields: &[(&'static str, Field)], _depth: usize) {
        self.events.lock().unwrap().push(name.to_string());
    }
}

impl From<Field> for Json {
    fn from(f: Field) -> Json {
        match f {
            Field::U64(v) => Json::from(v),
            Field::I64(v) => Json::from(v),
            Field::F64(v) => Json::from(v),
            Field::Bool(v) => Json::from(v),
            Field::Str(v) => Json::from(v),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_record_shape() {
        let rec = json_record(
            "span_exit",
            "quest.compile",
            &[("blocks", Field::U64(3))],
            1,
            Some(Duration::from_micros(250)),
        );
        let text = rec.to_string();
        let back = Json::parse(&text).unwrap();
        assert_eq!(back.get("type").and_then(Json::as_str), Some("span_exit"));
        assert_eq!(back.get("depth").and_then(Json::as_u64), Some(1));
        assert_eq!(
            back.get("fields")
                .and_then(|f| f.get("blocks"))
                .and_then(Json::as_u64),
            Some(3)
        );
        assert!((back.get("elapsed_us").and_then(Json::as_f64).unwrap() - 250.0).abs() < 1e-9);
    }

    #[test]
    fn fmt_fields_renders_pairs() {
        assert_eq!(fmt_fields(&[]), "");
        assert_eq!(
            fmt_fields(&[("a", Field::U64(1)), ("b", Field::Bool(false))]),
            " {a=1 b=false}"
        );
    }
}
