//! Offline drop-in subset of the `crossbeam` API, backed by `std::thread`.
//!
//! Only `crossbeam::thread::scope` is provided — `std::thread::scope`
//! (stable since 1.63) gives the same borrow-from-the-stack guarantee, so
//! this shim is a thin signature adapter: crossbeam spawn closures take a
//! `&Scope` argument and `scope` returns a `Result`.

pub mod thread {
    //! Scoped threads with the crossbeam 0.8 calling convention.

    use std::any::Any;

    /// Handle for spawning further threads inside a scope.
    pub struct Scope<'scope, 'env: 'scope> {
        inner: &'scope std::thread::Scope<'scope, 'env>,
    }

    /// Join handle for a scoped thread.
    pub struct ScopedJoinHandle<'scope, T> {
        inner: std::thread::ScopedJoinHandle<'scope, T>,
    }

    impl<T> ScopedJoinHandle<'_, T> {
        /// Waits for the thread and returns its result, or the panic payload
        /// if it panicked.
        pub fn join(self) -> Result<T, Box<dyn Any + Send + 'static>> {
            self.inner.join()
        }
    }

    impl<'scope, 'env> Scope<'scope, 'env> {
        /// Spawns a scoped thread; the closure receives the scope so it can
        /// spawn nested threads.
        pub fn spawn<F, T>(&self, f: F) -> ScopedJoinHandle<'scope, T>
        where
            F: FnOnce(&Scope<'scope, 'env>) -> T + Send + 'scope,
            T: Send + 'scope,
        {
            let inner = self.inner;
            ScopedJoinHandle {
                inner: inner.spawn(move || f(&Scope { inner })),
            }
        }
    }

    /// Runs `f` with a scope in which borrowed-data threads can be spawned;
    /// all threads are joined before `scope` returns.
    ///
    /// Unlike crossbeam (which collects panics from unjoined threads into
    /// the `Err` variant), `std::thread::scope` propagates unjoined-thread
    /// panics by resuming them on the caller; explicitly joined threads
    /// behave identically. This workspace joins every handle.
    ///
    /// # Errors
    ///
    /// Never returns `Err` (kept for crossbeam signature compatibility).
    pub fn scope<'env, F, R>(f: F) -> Result<R, Box<dyn Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&Scope<'scope, 'env>) -> R,
    {
        Ok(std::thread::scope(|s| f(&Scope { inner: s })))
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn scope_joins_and_borrows() {
        let data = [1u64, 2, 3, 4];
        let total = crate::thread::scope(|s| {
            let handles: Vec<_> = data.iter().map(|&x| s.spawn(move |_| x * 10)).collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum::<u64>()
        })
        .unwrap();
        assert_eq!(total, 100);
    }

    #[test]
    fn nested_spawn_via_scope_arg() {
        let n = crate::thread::scope(|s| {
            s.spawn(|inner| inner.spawn(|_| 7).join().unwrap())
                .join()
                .unwrap()
        })
        .unwrap();
        assert_eq!(n, 7);
    }

    #[test]
    fn join_surfaces_panics() {
        let res = crate::thread::scope(|s| s.spawn(|_| panic!("boom")).join());
        assert!(res.unwrap().is_err());
    }
}
