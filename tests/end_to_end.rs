//! Cross-crate integration tests: the full QUEST flow on real benchmark
//! circuits, checked against the paper's headline claims at test scale.

use qcircuit::Circuit;
use qsim::{noise::NoiseModel, Statevector};
use quest::{Quest, QuestConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A reducible 3-qubit circuit (two commuting ZZ Trotter steps collapse).
fn reducible_circuit() -> Circuit {
    let mut c = Circuit::new(3);
    c.h(0);
    for _ in 0..2 {
        c.cnot(0, 1).rz(1, 0.2).cnot(0, 1);
        c.cnot(1, 2).rz(2, 0.2).cnot(1, 2);
    }
    c
}

#[test]
fn quest_reduces_cnots_and_tracks_ideal_output() {
    let circuit = reducible_circuit();
    let result = Quest::new(QuestConfig::fast().with_seed(1)).compile(&circuit);
    assert!(!result.samples.is_empty());
    // Headline claim 1: CNOT reduction without output deviation (Fig. 8/9).
    assert!(
        result.min_cnot_sample().unwrap().cnot_count < circuit.cnot_count(),
        "no CNOT reduction"
    );
    let truth = Statevector::run(&circuit).probabilities();
    let avg = quest::evaluate::averaged_ideal_distribution(&result);
    let tvd = qsim::tvd(&truth, &avg);
    assert!(tvd < 0.15, "ideal-output TVD too high: {tvd}");
}

#[test]
fn quest_beats_baseline_under_noise() {
    // Headline claim 2 (Fig. 10/11): lower noisy-output error than the
    // baseline circuit, thanks to fewer CNOTs. ε = 0.3 guarantees the
    // menus contain reduced approximations (see the Fig. 16 sweep), making
    // the comparison deterministic rather than seed-lucky.
    let circuit = qbench::spin::tfim(4, 4, 0.1);
    let truth = Statevector::run(&circuit).probabilities();
    let model = NoiseModel::pauli(0.02);
    let mut rng = StdRng::seed_from_u64(2);

    let baseline_noisy =
        qsim::noise::run_noisy(&circuit, &model, 16384, 256, &mut rng).probabilities();
    let tvd_baseline = qsim::tvd(&truth, &baseline_noisy);

    // The Fig. 16 operating point: 4-qubit gate-capped blocks at ε = 0.4
    // cut tfim_4 from 24 to ~4 CNOTs with ideal TVD ≈ 0.04.
    let mut cfg = QuestConfig::default().with_seed(2).with_epsilon(0.4);
    cfg.max_block_gates = Some(26);
    cfg.max_synthesis_cnots = 12;
    cfg.synthesis.optimizer.max_iters = 300;
    cfg.synthesis.optimizer.restarts = 2;
    let result = Quest::new(cfg).compile(&circuit);
    assert!(
        result.mean_cnot_count() < circuit.cnot_count() as f64,
        "expected a CNOT reduction at ε = 0.3"
    );
    let quest_noisy =
        quest::evaluate::averaged_noisy_distribution(&result, &model, 16384, 256, &mut rng);
    let tvd_quest = qsim::tvd(&truth, &quest_noisy);

    assert!(
        tvd_quest < tvd_baseline,
        "QUEST ({tvd_quest:.3}) not better than baseline ({tvd_baseline:.3}) under noise"
    );
}

#[test]
fn theoretical_bound_holds_end_to_end() {
    // Headline claim 3 (Sec. 3.8 / Fig. 7): Σε bounds the real distance.
    let circuit = reducible_circuit();
    let result = Quest::new(QuestConfig::fast().with_seed(3)).compile(&circuit);
    for (actual, bound) in quest::bound::verify_bounds(&circuit, &result.samples) {
        assert!(actual <= bound + 1e-6, "bound violated: {actual} > {bound}");
    }
}

#[test]
fn quest_never_worse_than_baseline_cnots() {
    // The paper: "QUEST always performs better than Qiskit and never worse
    // than the Baseline" (in CNOT count).
    for b in qbench::suite().into_iter().take(4) {
        let result = Quest::new(QuestConfig::fast().with_seed(4)).compile(&b.circuit);
        for s in &result.samples {
            assert!(
                s.cnot_count <= b.circuit.cnot_count(),
                "{}: sample has more CNOTs than baseline",
                b.name
            );
        }
    }
}

#[test]
fn transpile_composes_with_quest() {
    // QUEST + Qiskit (the paper's preferred configuration): passes applied
    // to QUEST samples keep the unitary and never add CNOTs.
    let circuit = reducible_circuit();
    let result = Quest::new(QuestConfig::fast().with_seed(5)).compile(&circuit);
    for s in &result.samples {
        let optimized = qtranspile::optimize(&s.circuit);
        assert!(optimized.cnot_count() <= s.cnot_count);
        let d = qmath::hs::process_distance(&optimized.unitary(), &s.circuit.unitary());
        assert!(d < 1e-4, "transpile changed sample unitary: {d}");
    }
}

#[test]
fn qasm_roundtrip_of_quest_output() {
    let circuit = reducible_circuit();
    let result = Quest::new(QuestConfig::fast().with_seed(6)).compile(&circuit);
    for s in &result.samples {
        let text = qcircuit::qasm::emit(&s.circuit);
        let back = qcircuit::qasm::parse(&text).expect("emitted QASM must parse");
        assert_eq!(back, s.circuit);
    }
}

#[test]
fn partition_synthesis_selection_compose_on_wider_circuit() {
    // A 5-qubit circuit forces multiple blocks through the whole pipeline.
    let circuit = qbench::varia::qaoa_maxcut(5, 1, 0xCAFE);
    let result = Quest::new(QuestConfig::fast().with_seed(7)).compile(&circuit);
    assert!(result.blocks.len() >= 2, "expected multiple blocks");
    assert!(!result.samples.is_empty());
    for s in &result.samples {
        assert_eq!(s.indices.len(), result.blocks.len());
        assert_eq!(s.circuit.num_qubits(), 5);
    }
}
