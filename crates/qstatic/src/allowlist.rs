//! The `qstatic.toml` allowlist: audited exceptions to the invariant lints.
//!
//! Every entry names a lint, a file, a `pattern` the offending source line
//! must contain, and a `reason` documenting the audit. Entries without a
//! reason and entries that suppress nothing are reported as warnings
//! (errors under `--deny-all`) so the allowlist can only shrink honestly.
//!
//! The format is a small TOML subset parsed by hand (no external TOML crate
//! in this container): `[[allow]]` array-of-tables headers followed by
//! `key = "string"` pairs, with `#` comments.

use crate::lints::{Finding, Lint};

/// One audited exception.
#[derive(Clone, Debug, Default)]
pub struct AllowEntry {
    /// Lint id (`hash-iteration`, …).
    pub lint: String,
    /// Repo-relative path suffix of the file (`crates/qsynth/src/leap.rs`).
    pub path: String,
    /// Substring the offending source line must contain; `None` matches any
    /// line of the file for that lint.
    pub pattern: Option<String>,
    /// Why this exception is sound. Required in practice: a missing reason
    /// is a warning, and an error under `--deny-all`.
    pub reason: Option<String>,
    /// 1-based line of the `[[allow]]` header in `qstatic.toml`.
    pub line: u32,
}

impl AllowEntry {
    /// True when this entry suppresses `f`.
    pub fn matches(&self, f: &Finding) -> bool {
        self.lint == f.lint.id()
            && path_matches(&f.path, &self.path)
            && self
                .pattern
                .as_ref()
                .is_none_or(|p| f.line_text.contains(p.as_str()))
    }
}

/// Suffix path match on `/` boundaries: `crates/qsynth/src/leap.rs` matches
/// a finding at that exact repo-relative path, and also (for robustness to
/// how the root was given) any path ending in `/<entry>`.
fn path_matches(finding_path: &str, entry_path: &str) -> bool {
    let f = finding_path.replace('\\', "/");
    let e = entry_path.replace('\\', "/");
    if f == e {
        return true;
    }
    f.ends_with(&e) && f.as_bytes().get(f.len() - e.len() - 1) == Some(&b'/')
}

/// The parsed allowlist.
#[derive(Clone, Debug, Default)]
pub struct Allowlist {
    /// Entries, in file order.
    pub entries: Vec<AllowEntry>,
}

impl Allowlist {
    /// Parses `qstatic.toml` text. Errors (malformed lines, unknown keys,
    /// unknown lint ids) are hard: an allowlist that silently drops entries
    /// would silently widen enforcement — or worse, silently narrow it.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries: Vec<AllowEntry> = Vec::new();
        let mut in_entry = false;
        for (idx, raw) in text.lines().enumerate() {
            let lineno = u32::try_from(idx + 1).unwrap_or(u32::MAX);
            let line = strip_comment(raw).trim().to_string();
            if line.is_empty() {
                continue;
            }
            if line == "[[allow]]" {
                entries.push(AllowEntry {
                    line: lineno,
                    ..AllowEntry::default()
                });
                in_entry = true;
                continue;
            }
            if line.starts_with('[') {
                return Err(format!(
                    "qstatic.toml:{lineno}: unknown section `{line}` (only [[allow]] is recognized)"
                ));
            }
            let Some((key, value)) = parse_kv(&line) else {
                return Err(format!(
                    "qstatic.toml:{lineno}: expected `key = \"value\"`, got `{line}`"
                ));
            };
            if !in_entry {
                return Err(format!(
                    "qstatic.toml:{lineno}: `{key}` outside an [[allow]] entry"
                ));
            }
            let entry = entries
                .last_mut()
                .ok_or_else(|| format!("qstatic.toml:{lineno}: no open [[allow]] entry"))?;
            match key {
                "lint" => {
                    if Lint::from_id(&value).is_none() {
                        let known: Vec<&str> = Lint::ALL.iter().map(|l| l.id()).collect();
                        return Err(format!(
                            "qstatic.toml:{lineno}: unknown lint `{value}` (known: {})",
                            known.join(", ")
                        ));
                    }
                    entry.lint = value;
                }
                "path" => entry.path = value,
                "pattern" => entry.pattern = Some(value),
                "reason" => entry.reason = Some(value),
                other => {
                    return Err(format!(
                        "qstatic.toml:{lineno}: unknown key `{other}` \
                         (known: lint, path, pattern, reason)"
                    ));
                }
            }
        }
        for e in &entries {
            if e.lint.is_empty() || e.path.is_empty() {
                return Err(format!(
                    "qstatic.toml:{}: [[allow]] entry must set both `lint` and `path`",
                    e.line
                ));
            }
        }
        Ok(Allowlist { entries })
    }

    /// Partitions findings into (kept, suppressed-with-entry-index).
    pub fn apply(&self, findings: Vec<Finding>) -> (Vec<Finding>, Vec<(Finding, usize)>) {
        let mut kept = Vec::new();
        let mut suppressed = Vec::new();
        for f in findings {
            match self.entries.iter().position(|e| e.matches(&f)) {
                Some(idx) => suppressed.push((f, idx)),
                None => kept.push(f),
            }
        }
        (kept, suppressed)
    }

    /// Hygiene warnings: entries without a reason, and entries that
    /// suppressed nothing (`used` holds the indices returned by [`Self::apply`]).
    pub fn hygiene_warnings(&self, used: &[usize]) -> Vec<String> {
        let mut out = Vec::new();
        for (idx, e) in self.entries.iter().enumerate() {
            if e.reason.as_ref().is_none_or(|r| r.trim().is_empty()) {
                out.push(format!(
                    "qstatic.toml:{}: [[allow]] entry for `{}` at `{}` has no `reason` — \
                     every audited exception must document why it is sound",
                    e.line, e.lint, e.path
                ));
            }
            if !used.contains(&idx) {
                out.push(format!(
                    "qstatic.toml:{}: [[allow]] entry for `{}` at `{}` suppressed nothing — \
                     stale entries must be removed so the allowlist only shrinks",
                    e.line, e.lint, e.path
                ));
            }
        }
        out
    }
}

/// Strips a `#` comment, respecting `"` strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    let mut prev_backslash = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' if !prev_backslash => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
        prev_backslash = c == '\\' && !prev_backslash;
    }
    line
}

/// Parses `key = "value"`. Only double-quoted string values are accepted.
fn parse_kv(line: &str) -> Option<(&str, String)> {
    let (key, rest) = line.split_once('=')?;
    let key = key.trim();
    if key.is_empty() || !key.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') {
        return None;
    }
    let rest = rest.trim();
    let inner = rest.strip_prefix('"')?.strip_suffix('"')?;
    // Minimal escape handling: \" and \\.
    let mut value = String::with_capacity(inner.len());
    let mut chars = inner.chars();
    while let Some(c) = chars.next() {
        if c == '\\' {
            match chars.next() {
                Some('"') => value.push('"'),
                Some('\\') => value.push('\\'),
                Some(other) => {
                    value.push('\\');
                    value.push(other);
                }
                None => value.push('\\'),
            }
        } else {
            value.push(c);
        }
    }
    Some((key, value))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lints::analyze_source;

    const TOML: &str = r#"
# audited exceptions
[[allow]]
lint = "wall-clock"
path = "crates/demo/src/lib.rs"
pattern = "Instant::now"
reason = "registered deadline site"
"#;

    #[test]
    fn parse_round_trips() {
        let al = Allowlist::parse(TOML).unwrap();
        assert_eq!(al.entries.len(), 1);
        let e = &al.entries[0];
        assert_eq!(e.lint, "wall-clock");
        assert_eq!(e.pattern.as_deref(), Some("Instant::now"));
        assert_eq!(e.reason.as_deref(), Some("registered deadline site"));
    }

    #[test]
    fn entry_suppresses_matching_finding() {
        let al = Allowlist::parse(TOML).unwrap();
        let findings = analyze_source(
            "crates/demo/src/lib.rs",
            "demo",
            "fn f() { let t = Instant::now(); }",
        );
        assert_eq!(findings.len(), 1);
        let (kept, suppressed) = al.apply(findings);
        assert!(kept.is_empty());
        assert_eq!(suppressed.len(), 1);
        let used: Vec<usize> = suppressed.iter().map(|(_, i)| *i).collect();
        assert!(al.hygiene_warnings(&used).is_empty());
    }

    #[test]
    fn wrong_path_or_pattern_does_not_suppress() {
        let al = Allowlist::parse(TOML).unwrap();
        let other_file = analyze_source(
            "crates/demo/src/other.rs",
            "demo",
            "fn f() { let t = Instant::now(); }",
        );
        let (kept, _) = al.apply(other_file);
        assert_eq!(kept.len(), 1, "different file must not be suppressed");
    }

    #[test]
    fn unused_and_reasonless_entries_warn() {
        let al =
            Allowlist::parse("[[allow]]\nlint = \"wall-clock\"\npath = \"crates/x/src/lib.rs\"\n")
                .unwrap();
        let warnings = al.hygiene_warnings(&[]);
        assert_eq!(warnings.len(), 2, "{warnings:?}");
        assert!(warnings[0].contains("no `reason`"));
        assert!(warnings[1].contains("suppressed nothing"));
    }

    #[test]
    fn malformed_input_is_a_hard_error() {
        assert!(Allowlist::parse("[unknown]").is_err());
        assert!(Allowlist::parse("lint = \"wall-clock\"").is_err());
        assert!(Allowlist::parse("[[allow]]\nlint = \"no-such-lint\"\npath = \"x\"").is_err());
        assert!(Allowlist::parse("[[allow]]\nlint = \"wall-clock\"").is_err());
    }

    #[test]
    fn path_matching_is_boundary_aware() {
        assert!(path_matches(
            "crates/qsynth/src/leap.rs",
            "crates/qsynth/src/leap.rs"
        ));
        assert!(path_matches(
            "repo/crates/qsynth/src/leap.rs",
            "crates/qsynth/src/leap.rs"
        ));
        assert!(!path_matches("crates/qsynth/src/xleap.rs", "leap.rs"));
        assert!(path_matches("crates/qsynth/src/leap.rs", "leap.rs"));
    }
}
